//! Identifier scheme for every entity in the grid.
//!
//! Paper §4.2: "Any client RPC call execution in the system is identified
//! by: the user unique ID, a session unique ID and a RPC unique ID.  A
//! session corresponds to the logging of the user into the system ...
//! Any instance of the client program may connect the Coordinator with
//! different IP and retrieve results and RPC status using the unique IDs."
//!
//! Task ids additionally embed the allocating coordinator so that task
//! instances created independently by different coordinator replicas never
//! collide.

use rpcv_wire::{Reader, WireDecode, WireEncode, WireError, WireWrite};

macro_rules! id_u64 {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl WireEncode for $name {
            fn encode<W: WireWrite + ?Sized>(&self, w: &mut W) {
                w.put_uvarint(self.0);
            }
        }
        impl WireDecode for $name {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok($name(r.get_uvarint()?))
            }
        }
        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

id_u64! {
    /// A registered grid user.
    UserId
}
id_u64! {
    /// One login of a user ("the session ends on logout").
    SessionId
}
id_u64! {
    /// A computing server (XtremWeb worker).
    ServerId
}
id_u64! {
    /// A coordinator replica.
    CoordId
}

/// A client instance: `(user, session)`.
///
/// Different client program instances (possibly on different IPs) with the
/// same key are the *same* logical client and may resume each other's work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientKey {
    /// Owning user.
    pub user: UserId,
    /// Login session.
    pub session: SessionId,
}

impl ClientKey {
    /// Convenience constructor.
    pub fn new(user: u64, session: u64) -> Self {
        ClientKey { user: UserId(user), session: SessionId(session) }
    }

    /// Packs into the `u64` peer key used by `rpcv-log`'s `PeerLog`
    /// (32-bit user / 32-bit session — desktop-grid populations are far
    /// below either bound).
    pub fn as_peer(&self) -> u64 {
        (self.user.0 << 32) | (self.session.0 & 0xffff_ffff)
    }

    /// The coordinator shard owning this client's job space:
    /// `hash(ClientKey) % shards`.
    ///
    /// Every party (clients, servers, coordinators, the store-level routing
    /// proptest) must agree on this function, so it lives next to the key it
    /// hashes.  The mixer is the splitmix64 finalizer — deterministic, stable
    /// across platforms, and unbiased enough that sequentially numbered users
    /// spread across shards instead of striping.
    pub fn shard_of(&self, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        let mut x = self.as_peer().wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % shards as u64) as usize
    }
}

impl WireEncode for ClientKey {
    fn encode<W: WireWrite + ?Sized>(&self, w: &mut W) {
        self.user.encode(w);
        self.session.encode(w);
    }
}
impl WireDecode for ClientKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ClientKey { user: UserId::decode(r)?, session: SessionId::decode(r)? })
    }
}

impl std::fmt::Display for ClientKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}s{}", self.user.0, self.session.0)
    }
}

/// The paper's full RPC identity: `(user, session, rpc-sequence)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobKey {
    /// Submitting client.
    pub client: ClientKey,
    /// The client's unique submission counter value (its "timestamp").
    pub seq: u64,
}

impl JobKey {
    /// Convenience constructor.
    pub fn new(client: ClientKey, seq: u64) -> Self {
        JobKey { client, seq }
    }
}

impl WireEncode for JobKey {
    fn encode<W: WireWrite + ?Sized>(&self, w: &mut W) {
        self.client.encode(w);
        w.put_uvarint(self.seq);
    }
}
impl WireDecode for JobKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(JobKey { client: ClientKey::decode(r)?, seq: r.get_uvarint()? })
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.client, self.seq)
    }
}

/// A task instance id: allocating coordinator in the top 16 bits, local
/// counter below, so replicas allocate disjoint id spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub u64);

impl TaskId {
    /// Composes a task id from the allocating coordinator and its counter.
    pub fn compose(coord: CoordId, counter: u64) -> Self {
        debug_assert!(coord.0 < (1 << 16), "coordinator id must fit 16 bits");
        debug_assert!(counter < (1 << 48), "task counter must fit 48 bits");
        TaskId((coord.0 << 48) | (counter & 0x0000_ffff_ffff_ffff))
    }

    /// The allocating coordinator.
    pub fn coord(&self) -> CoordId {
        CoordId(self.0 >> 48)
    }

    /// The allocator-local counter.
    pub fn counter(&self) -> u64 {
        self.0 & 0x0000_ffff_ffff_ffff
    }
}

impl WireEncode for TaskId {
    fn encode<W: WireWrite + ?Sized>(&self, w: &mut W) {
        w.put_uvarint(self.0);
    }
}
impl WireDecode for TaskId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TaskId(r.get_uvarint()?))
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}.{}", self.coord().0, self.counter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpcv_wire::{from_bytes, to_bytes};

    #[test]
    fn ids_roundtrip() {
        let k = JobKey::new(ClientKey::new(7, 3), 42);
        let back: JobKey = from_bytes(&to_bytes(&k)).unwrap();
        assert_eq!(back, k);
        let t = TaskId::compose(CoordId(5), 1234);
        let back: TaskId = from_bytes(&to_bytes(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn task_id_compose_decompose() {
        let t = TaskId::compose(CoordId(3), 999);
        assert_eq!(t.coord(), CoordId(3));
        assert_eq!(t.counter(), 999);
        // Different coordinators allocate disjoint spaces.
        let a = TaskId::compose(CoordId(1), 5);
        let b = TaskId::compose(CoordId(2), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn client_key_peer_packing_is_injective_for_small_ids() {
        let a = ClientKey::new(1, 2).as_peer();
        let b = ClientKey::new(2, 1).as_peer();
        assert_ne!(a, b);
    }

    #[test]
    fn jobkey_orders_by_client_then_seq() {
        let a = JobKey::new(ClientKey::new(1, 1), 9);
        let b = JobKey::new(ClientKey::new(1, 2), 1);
        let c = JobKey::new(ClientKey::new(1, 2), 2);
        assert!(a < b && b < c);
    }

    #[test]
    fn displays() {
        assert_eq!(ClientKey::new(1, 2).to_string(), "u1s2");
        assert_eq!(JobKey::new(ClientKey::new(1, 2), 3).to_string(), "u1s2:3");
        assert_eq!(TaskId::compose(CoordId(1), 7).to_string(), "t1.7");
    }
}
