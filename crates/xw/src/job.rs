//! Client jobs: the unit a client submits to a coordinator.
//!
//! "Jobs in XtremWeb are very close to remote execution calls and encompass
//! command line and an optional directory archive (the called executable is
//! transferred automatically on the server side if necessary)" (§4.2).

use rpcv_wire::{Blob, Reader, WireDecode, WireEncode, WireError, WireWrite};

use crate::ids::JobKey;

/// A submitted RPC call / remote execution job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Full identity: `(user, session, seq)`.
    pub key: JobKey,
    /// Stateless service to invoke (function identifier).
    pub service: String,
    /// XtremWeb-style command line for remote-execution jobs.
    pub cmdline: String,
    /// Marshalled parameters, or a compressed directory archive.
    pub params: Blob,
    /// Declared execution cost in CPU work-units (drives the simulated
    /// execution time; the threaded runtime runs the real service instead).
    pub exec_cost: f64,
    /// Expected result size in bytes (workload model; the real service's
    /// output wins in the threaded runtime).
    pub result_size_hint: u64,
    /// Extension: number of *redundant* task instances to schedule ahead of
    /// any suspicion.  `1` = the paper's baseline ("This simple
    /// implementation does not schedule RPC redundantly in order to
    /// anticipate potential failures.  However, this could be added easily
    /// with a replication flag associated with the task state").
    pub replication: u32,
    /// Extension (checkpointing, paper §6 future work): how many
    /// checkpointable *work units* the execution divides into.  `1` = an
    /// atomic task (the paper baseline: progress is all-or-nothing); a
    /// task of N units can snapshot at unit boundaries and a successor
    /// instance resumes from the highest durable unit instead of zero.
    pub work_units: u32,
}

impl JobSpec {
    /// A plain single-instance job.
    pub fn new(key: JobKey, service: impl Into<String>, params: Blob) -> Self {
        JobSpec {
            key,
            service: service.into(),
            cmdline: String::new(),
            params,
            exec_cost: 0.0,
            result_size_hint: 0,
            replication: 1,
            work_units: 1,
        }
    }

    /// Builder: declared execution cost (work-units).
    pub fn with_exec_cost(mut self, cost: f64) -> Self {
        self.exec_cost = cost;
        self
    }

    /// Builder: expected result size.
    pub fn with_result_size(mut self, bytes: u64) -> Self {
        self.result_size_hint = bytes;
        self
    }

    /// Builder: command line.
    pub fn with_cmdline(mut self, cmdline: impl Into<String>) -> Self {
        self.cmdline = cmdline.into();
        self
    }

    /// Builder: redundant-replication factor (extension).
    pub fn with_replication(mut self, n: u32) -> Self {
        self.replication = n.max(1);
        self
    }

    /// Builder: checkpointable work-unit count (extension; floors at 1).
    pub fn with_work_units(mut self, n: u32) -> Self {
        self.work_units = n.max(1);
        self
    }

    /// Parameter payload size in bytes.
    pub fn params_len(&self) -> u64 {
        self.params.len()
    }
}

impl WireEncode for JobSpec {
    fn encode<W: WireWrite + ?Sized>(&self, w: &mut W) {
        self.key.encode(w);
        w.put_str(&self.service);
        w.put_str(&self.cmdline);
        self.params.encode(w);
        w.put_f64(self.exec_cost);
        w.put_uvarint(self.result_size_hint);
        w.put_uvarint(self.replication as u64);
        w.put_uvarint(self.work_units as u64);
    }
}

impl WireDecode for JobSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(JobSpec {
            key: JobKey::decode(r)?,
            service: r.get_string()?,
            cmdline: r.get_string()?,
            params: Blob::decode(r)?,
            exec_cost: r.get_f64()?,
            result_size_hint: r.get_uvarint()?,
            replication: u32::decode(r)?,
            work_units: u32::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientKey;
    use rpcv_wire::{from_bytes, to_bytes};

    fn job() -> JobSpec {
        JobSpec::new(JobKey::new(ClientKey::new(1, 2), 3), "netsim/eval", Blob::synthetic(1024, 9))
            .with_exec_cost(10.0)
            .with_result_size(256)
            .with_cmdline("eval --config net.cfg")
            .with_replication(2)
            .with_work_units(8)
    }

    #[test]
    fn roundtrip() {
        let j = job();
        let back: JobSpec = from_bytes(&to_bytes(&j)).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn builders() {
        let j = job();
        assert_eq!(j.exec_cost, 10.0);
        assert_eq!(j.result_size_hint, 256);
        assert_eq!(j.replication, 2);
        assert_eq!(j.work_units, 8);
        assert_eq!(j.params_len(), 1024);
    }

    #[test]
    fn replication_is_at_least_one() {
        let j = JobSpec::new(JobKey::default(), "s", Blob::empty()).with_replication(0);
        assert_eq!(j.replication, 1);
    }

    #[test]
    fn work_units_floor_at_one() {
        let j = JobSpec::new(JobKey::default(), "s", Blob::empty()).with_work_units(0);
        assert_eq!(j.work_units, 1);
        assert_eq!(JobSpec::new(JobKey::default(), "s", Blob::empty()).work_units, 1);
    }

    #[test]
    fn wire_size_tracks_params() {
        let small = JobSpec::new(JobKey::default(), "s", Blob::synthetic(10, 0));
        let big = JobSpec::new(JobKey::default(), "s", Blob::synthetic(1_000_000, 0));
        // Synthetic blobs keep the *frame* small; the modelled payload size
        // is accounted via params_len, not encoded_len.
        assert!(big.encoded_len() < 100);
        assert_eq!(big.params_len(), 1_000_000);
        assert!(small.encoded_len() <= big.encoded_len());
    }
}
