//! # rpcv-xw — the desktop-grid middleware substrate
//!
//! RPC-V was implemented "on top of the XtremWeb Desktop Grid middleware as
//! a proof of concept" (paper §4.2).  XtremWeb supplies the job/task
//! vocabulary and the worker execution machinery; this crate is our
//! from-scratch equivalent:
//!
//! * [`ids`] — the identifier scheme: "Any client RPC call execution in
//!   the system is identified by: the user unique ID, a session unique ID
//!   and a RPC unique ID" (§4.2);
//! * [`job`] — client *jobs* ("very close to remote execution calls and
//!   encompass command line and an optional directory archive");
//! * [`task`] — *tasks*, the coordinator-side instances of jobs ("the
//!   client submits jobs on the coordinator, which are translated as tasks
//!   (instances of jobs) and forwarded to the server (known as the worker
//!   in XtremWeb)");
//! * [`service`] — the stateless service registry (§2.3 restricts desktop
//!   grids to stateless services; the registry enforces it by shape: a
//!   service is a pure function of its parameters);
//! * [`worker`] — the server-side executor with sandbox limits
//!   ("integrity is ensured by Sandboxing executions at the server side");
//! * [`archive`] — result archives ("the server builds an archive of new
//!   or modified files (including application outputs) and sends it to
//!   the coordinator"), integrity-checked with CRC-64 frames.

pub mod archive;
pub mod ids;
pub mod job;
pub mod service;
pub mod task;
pub mod worker;

pub use archive::{Archive, ArchiveEntry};
pub use ids::{ClientKey, CoordId, JobKey, ServerId, SessionId, TaskId, UserId};
pub use job::JobSpec;
pub use service::{SandboxLimits, ServiceCtx, ServiceError, ServiceRegistry};
pub use task::{TaskDesc, TaskState};
pub use worker::WorkerExecutor;
