//! The stateless service registry.
//!
//! §2.3 of the paper concludes that Internet desktop grids "should be
//! conservatively restricted to applications calling stateless services
//! and at-least-once semantics".  The registry enforces statelessness *by
//! construction*: a service is a `Fn(&Blob, &ServiceCtx) -> Result<Blob>`
//! — it receives parameters, returns a result, and has no other channel to
//! the system.  Re-executing it with the same parameters is always safe,
//! which is what makes the coordinator's "on suspicion" re-scheduling
//! correct.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rpcv_wire::Blob;

/// Sandbox limits enforced around every service invocation.
///
/// XtremWeb ensures integrity "by Sandboxing executions at the server
/// side"; our executor enforces resource bounds and rejects violations the
/// same way a sandbox kill would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SandboxLimits {
    /// Maximum accepted parameter size.
    pub max_input_bytes: u64,
    /// Maximum produced result size.
    pub max_output_bytes: u64,
}

impl Default for SandboxLimits {
    fn default() -> Self {
        SandboxLimits { max_input_bytes: 1 << 30, max_output_bytes: 1 << 30 }
    }
}

/// Per-invocation context handed to services.
#[derive(Debug, Clone, Copy)]
pub struct ServiceCtx {
    /// Deterministic seed derived from the task identity; lets services
    /// generate reproducible synthetic output.
    pub seed: u64,
    /// Active sandbox limits.
    pub limits: SandboxLimits,
}

/// Service invocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No service registered under the requested name.
    UnknownService(String),
    /// The service itself reported failure.
    ExecutionFailed(String),
    /// Parameters exceeded the sandbox input limit.
    InputTooLarge {
        /// Actual size.
        got: u64,
        /// Configured limit.
        limit: u64,
    },
    /// Result exceeded the sandbox output limit.
    OutputTooLarge {
        /// Actual size.
        got: u64,
        /// Configured limit.
        limit: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownService(name) => write!(f, "unknown service {name:?}"),
            ServiceError::ExecutionFailed(msg) => write!(f, "service execution failed: {msg}"),
            ServiceError::InputTooLarge { got, limit } => {
                write!(f, "input of {got} bytes exceeds sandbox limit {limit}")
            }
            ServiceError::OutputTooLarge { got, limit } => {
                write!(f, "output of {got} bytes exceeds sandbox limit {limit}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// A stateless service function.
pub type ServiceFn = dyn Fn(&Blob, &ServiceCtx) -> Result<Blob, ServiceError> + Send + Sync;

/// Name → service mapping shared by workers.
#[derive(Clone, Default)]
pub struct ServiceRegistry {
    services: BTreeMap<String, Arc<ServiceFn>>,
}

impl ServiceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a service.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&Blob, &ServiceCtx) -> Result<Blob, ServiceError> + Send + Sync + 'static,
    {
        self.services.insert(name.into(), Arc::new(f));
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    /// Registered service names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.services.keys().cloned().collect()
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Invokes `name` under the sandbox in `ctx`.
    pub fn invoke(
        &self,
        name: &str,
        params: &Blob,
        ctx: &ServiceCtx,
    ) -> Result<Blob, ServiceError> {
        let f =
            self.services.get(name).ok_or_else(|| ServiceError::UnknownService(name.to_owned()))?;
        if params.len() > ctx.limits.max_input_bytes {
            return Err(ServiceError::InputTooLarge {
                got: params.len(),
                limit: ctx.limits.max_input_bytes,
            });
        }
        let out = f(params, ctx)?;
        if out.len() > ctx.limits.max_output_bytes {
            return Err(ServiceError::OutputTooLarge {
                got: out.len(),
                limit: ctx.limits.max_output_bytes,
            });
        }
        Ok(out)
    }
}

impl fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRegistry").field("services", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ServiceCtx {
        ServiceCtx { seed: 7, limits: SandboxLimits::default() }
    }

    #[test]
    fn register_and_invoke() {
        let mut reg = ServiceRegistry::new();
        reg.register("echo", |p, _| Ok(p.clone()));
        assert!(reg.contains("echo"));
        assert_eq!(reg.names(), vec!["echo"]);
        let out = reg.invoke("echo", &Blob::from_vec(vec![1, 2, 3]), &ctx()).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn unknown_service() {
        let reg = ServiceRegistry::new();
        assert!(matches!(
            reg.invoke("nope", &Blob::empty(), &ctx()),
            Err(ServiceError::UnknownService(_))
        ));
    }

    #[test]
    fn execution_failure_propagates() {
        let mut reg = ServiceRegistry::new();
        reg.register("boom", |_, _| Err(ServiceError::ExecutionFailed("kaput".into())));
        let err = reg.invoke("boom", &Blob::empty(), &ctx()).unwrap_err();
        assert!(err.to_string().contains("kaput"));
    }

    #[test]
    fn sandbox_limits_enforced() {
        let mut reg = ServiceRegistry::new();
        reg.register("blowup", |_, _| Ok(Blob::synthetic(10_000, 0)));
        let tight = ServiceCtx {
            seed: 0,
            limits: SandboxLimits { max_input_bytes: 100, max_output_bytes: 100 },
        };
        // Input too large.
        assert!(matches!(
            reg.invoke("blowup", &Blob::synthetic(200, 0), &tight),
            Err(ServiceError::InputTooLarge { got: 200, limit: 100 })
        ));
        // Output too large.
        assert!(matches!(
            reg.invoke("blowup", &Blob::empty(), &tight),
            Err(ServiceError::OutputTooLarge { got: 10_000, limit: 100 })
        ));
    }

    #[test]
    fn replace_service() {
        let mut reg = ServiceRegistry::new();
        reg.register("f", |_, _| Ok(Blob::from_vec(vec![1])));
        reg.register("f", |_, _| Ok(Blob::from_vec(vec![2])));
        let out = reg.invoke("f", &Blob::empty(), &ctx()).unwrap();
        assert_eq!(out.materialize()[0], 2);
        assert_eq!(reg.len(), 1);
    }
}
