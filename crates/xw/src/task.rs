//! Tasks: coordinator-side instances of jobs.
//!
//! "the client submits jobs on the coordinator, which are translated as
//! tasks (instances of jobs) and forwarded to the server" (§4.2).  A job
//! may have several task instances over its lifetime: re-executions after
//! server suspicion, redundant replicas (extension), or duplicated
//! executions caused by system asynchrony — at-least-once semantics make
//! all of these safe.

use rpcv_simnet::SimTime;
use rpcv_wire::{Blob, Reader, WireDecode, WireEncode, WireError, WireWrite};

use crate::ids::{JobKey, ServerId, TaskId};

/// Scheduling state of a task instance.
///
/// "tasks are replicated among coordinators with their state (finished,
/// ongoing, pending)" (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskState {
    /// Awaiting dispatch.
    #[default]
    Pending,
    /// Dispatched to a server.
    Ongoing {
        /// Executing server.
        server: ServerId,
        /// Dispatch instant.
        since: SimTime,
    },
    /// Result registered.
    Finished {
        /// Result archive size in bytes.
        result_size: u64,
    },
}

impl TaskState {
    /// Short name for traces and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            TaskState::Pending => "pending",
            TaskState::Ongoing { .. } => "ongoing",
            TaskState::Finished { .. } => "finished",
        }
    }

    /// True for `Finished`.
    pub fn is_finished(&self) -> bool {
        matches!(self, TaskState::Finished { .. })
    }
}

impl WireEncode for TaskState {
    fn encode<W: WireWrite + ?Sized>(&self, w: &mut W) {
        match self {
            TaskState::Pending => w.put_u8(0),
            TaskState::Ongoing { server, since } => {
                w.put_u8(1);
                server.encode(w);
                w.put_uvarint(since.0);
            }
            TaskState::Finished { result_size } => {
                w.put_u8(2);
                w.put_uvarint(*result_size);
            }
        }
    }
}

impl WireDecode for TaskState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(TaskState::Pending),
            1 => Ok(TaskState::Ongoing {
                server: ServerId::decode(r)?,
                since: SimTime(r.get_uvarint()?),
            }),
            2 => Ok(TaskState::Finished { result_size: r.get_uvarint()? }),
            tag => Err(WireError::InvalidTag { ty: "TaskState", tag: tag as u64 }),
        }
    }
}

/// What a server needs to execute one task instance.
///
/// "The server receives the task description along with the command line
/// and file archive and launches the execution of the corresponding
/// executable" (§4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDesc {
    /// Instance id (embeds the allocating coordinator).
    pub id: TaskId,
    /// The job this instance executes.
    pub job: JobKey,
    /// Instance number for this job (0 = first attempt).
    pub attempt: u32,
    /// Service to invoke.
    pub service: String,
    /// Command line.
    pub cmdline: String,
    /// Parameters / input archive.
    pub params: Blob,
    /// Declared execution cost (work-units) for the simulator.
    pub exec_cost: f64,
    /// Expected result size (workload model).
    pub result_size_hint: u64,
    /// Checkpointable work-unit count (extension; `1` = atomic task).  A
    /// server executing an N-unit task can snapshot progress at unit
    /// boundaries; a successor instance resumes from the job's highest
    /// durable unit instead of unit zero.
    pub work_units: u32,
}

impl TaskDesc {
    /// Parameter payload size.
    pub fn params_len(&self) -> u64 {
        self.params.len()
    }

    /// Work-unit count with the ≥ 1 floor applied (a descriptor decoded
    /// from an old peer may carry 0).
    pub fn units(&self) -> u32 {
        self.work_units.max(1)
    }
}

impl WireEncode for TaskDesc {
    fn encode<W: WireWrite + ?Sized>(&self, w: &mut W) {
        self.id.encode(w);
        self.job.encode(w);
        w.put_uvarint(self.attempt as u64);
        w.put_str(&self.service);
        w.put_str(&self.cmdline);
        self.params.encode(w);
        w.put_f64(self.exec_cost);
        w.put_uvarint(self.result_size_hint);
        w.put_uvarint(self.work_units as u64);
    }
}

impl WireDecode for TaskDesc {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TaskDesc {
            id: TaskId::decode(r)?,
            job: JobKey::decode(r)?,
            attempt: u32::decode(r)?,
            service: r.get_string()?,
            cmdline: r.get_string()?,
            params: Blob::decode(r)?,
            exec_cost: r.get_f64()?,
            result_size_hint: r.get_uvarint()?,
            work_units: u32::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientKey, CoordId};
    use rpcv_wire::{from_bytes, to_bytes};

    #[test]
    fn state_roundtrips() {
        for s in [
            TaskState::Pending,
            TaskState::Ongoing { server: ServerId(4), since: SimTime::from_secs(9) },
            TaskState::Finished { result_size: 777 },
        ] {
            let back: TaskState = from_bytes(&to_bytes(&s)).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn state_names() {
        assert_eq!(TaskState::Pending.name(), "pending");
        assert!(!TaskState::Pending.is_finished());
        assert!(TaskState::Finished { result_size: 0 }.is_finished());
    }

    #[test]
    fn desc_roundtrips() {
        let d = TaskDesc {
            id: TaskId::compose(CoordId(1), 5),
            job: JobKey::new(ClientKey::new(1, 1), 9),
            attempt: 2,
            service: "svc".into(),
            cmdline: "run".into(),
            params: Blob::synthetic(2048, 3),
            exec_cost: 12.5,
            result_size_hint: 100,
            work_units: 16,
        };
        let back: TaskDesc = from_bytes(&to_bytes(&d)).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.params_len(), 2048);
        assert_eq!(back.units(), 16);
    }

    #[test]
    fn units_floor_at_one() {
        let mut d = TaskDesc {
            id: TaskId::compose(CoordId(1), 1),
            job: JobKey::new(ClientKey::new(1, 1), 1),
            attempt: 0,
            service: "svc".into(),
            cmdline: String::new(),
            params: Blob::empty(),
            exec_cost: 1.0,
            result_size_hint: 1,
            work_units: 0,
        };
        assert_eq!(d.units(), 1);
        d.work_units = 7;
        assert_eq!(d.units(), 7);
    }

    #[test]
    fn invalid_state_tag_rejected() {
        assert!(matches!(
            from_bytes::<TaskState>(&[9]),
            Err(WireError::InvalidTag { ty: "TaskState", .. })
        ));
    }
}
