//! The server-side executor (the XtremWeb *worker*).
//!
//! Executes task descriptions against the stateless service registry,
//! under sandbox limits, and wraps outputs into result archives.  Also
//! exposes the simulated-execution cost used by the discrete-event world.

use rpcv_wire::Blob;

use crate::archive::Archive;
use crate::service::{SandboxLimits, ServiceCtx, ServiceError, ServiceRegistry};
use crate::task::TaskDesc;

/// Executes tasks on a server.
#[derive(Debug, Clone)]
pub struct WorkerExecutor {
    registry: ServiceRegistry,
    limits: SandboxLimits,
}

impl WorkerExecutor {
    /// Executor over `registry` with `limits`.
    pub fn new(registry: ServiceRegistry, limits: SandboxLimits) -> Self {
        WorkerExecutor { registry, limits }
    }

    /// The active sandbox limits.
    pub fn limits(&self) -> SandboxLimits {
        self.limits
    }

    /// The service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// Really executes the task (threaded runtime): invokes the service and
    /// packs its output into a result archive.
    pub fn execute(&self, task: &TaskDesc) -> Result<Archive, ServiceError> {
        let seed = task.id.0 ^ task.job.seq.rotate_left(32);
        let ctx = ServiceCtx { seed, limits: self.limits };
        let out = self.registry.invoke(&task.service, &task.params, &ctx)?;
        let mut archive = Archive::new();
        archive.push("result.bin", out);
        Ok(archive)
    }

    /// Simulated execution: returns `(cpu work-units, result size)` for the
    /// discrete-event world.  The declared `exec_cost`/`result_size_hint`
    /// from the job drive the model; a zero cost means "trivial service"
    /// (a minimal epsilon keeps event ordering sane).
    pub fn simulate(&self, task: &TaskDesc) -> (f64, u64) {
        let work = if task.exec_cost > 0.0 { task.exec_cost } else { 1e-6 };
        let result_size = task.result_size_hint.max(1);
        (work, result_size)
    }

    /// Produces the modelled result payload for simulated execution:
    /// deterministic bytes derived from the task identity, of the declared
    /// size.
    pub fn simulate_result(&self, task: &TaskDesc) -> Blob {
        let (_, size) = self.simulate(task);
        Blob::synthetic(size, task.id.0 ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientKey, CoordId, JobKey, TaskId};

    fn task(service: &str) -> TaskDesc {
        TaskDesc {
            id: TaskId::compose(CoordId(0), 1),
            job: JobKey::new(ClientKey::new(1, 1), 1),
            attempt: 0,
            service: service.into(),
            cmdline: String::new(),
            params: Blob::from_vec(vec![5u8; 16]),
            exec_cost: 3.0,
            result_size_hint: 128,
            work_units: 1,
        }
    }

    fn executor() -> WorkerExecutor {
        let mut reg = ServiceRegistry::new();
        reg.register("double", |p, _| {
            let bytes = p.materialize();
            Ok(Blob::from_vec(bytes.iter().map(|b| b.wrapping_mul(2)).collect()))
        });
        WorkerExecutor::new(reg, SandboxLimits::default())
    }

    #[test]
    fn execute_runs_service_and_archives() {
        let ex = executor();
        let archive = ex.execute(&task("double")).unwrap();
        assert_eq!(archive.len(), 1);
        assert_eq!(archive.entries[0].path, "result.bin");
        assert_eq!(archive.entries[0].data.materialize()[0], 10);
    }

    #[test]
    fn execute_unknown_service_fails() {
        let ex = executor();
        assert!(matches!(ex.execute(&task("missing")), Err(ServiceError::UnknownService(_))));
    }

    #[test]
    fn simulate_uses_declared_cost() {
        let ex = executor();
        let (work, size) = ex.simulate(&task("double"));
        assert_eq!(work, 3.0);
        assert_eq!(size, 128);
    }

    #[test]
    fn simulate_zero_cost_gets_epsilon() {
        let ex = executor();
        let mut t = task("double");
        t.exec_cost = 0.0;
        t.result_size_hint = 0;
        let (work, size) = ex.simulate(&t);
        assert!(work > 0.0);
        assert!(size > 0);
    }

    #[test]
    fn simulated_result_is_deterministic_per_task() {
        let ex = executor();
        let t = task("double");
        let a = ex.simulate_result(&t);
        let b = ex.simulate_result(&t);
        assert!(a.content_eq(&b));
        let mut t2 = t.clone();
        t2.id = TaskId::compose(CoordId(0), 2);
        assert!(!ex.simulate_result(&t2).content_eq(&a));
    }

    #[test]
    fn execution_is_stateless_rerun_identical() {
        // At-least-once safety: re-executing produces identical output.
        let ex = executor();
        let t = task("double");
        let a = ex.execute(&t).unwrap();
        let b = ex.execute(&t).unwrap();
        assert_eq!(a, b);
    }
}
