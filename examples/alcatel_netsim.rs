//! The paper's real-life workload, really computed.
//!
//! Runs the Alcatel-style commutation-network validation application
//! (§5.2) on a live grid with real service execution: every task decodes a
//! random switch-network configuration, runs Dijkstra (signal loss) and
//! widest-path (bandwidth) per terminal pair, and returns a marshalled
//! report.  A coordinator is killed and restarted mid-run.
//!
//! Run with: `cargo run --release --example alcatel_netsim`

use std::time::Duration;

use rpcv::core::api::GridClient;
use rpcv::core::config::{ExecMode, ProtocolConfig};
use rpcv::core::grid::GridSpec;
use rpcv::core::runtime::LiveGrid;
use rpcv::core::util::CallSpec;
use rpcv::simnet::SimDuration;
use rpcv::wire::{from_bytes, Blob};
use rpcv::workload::alcatel::{AlcatelApp, EvalReport};
use rpcv::xw::ServiceRegistry;

fn main() {
    let mut registry = ServiceRegistry::new();
    AlcatelApp::register(&mut registry);

    let cfg = ProtocolConfig::confined()
        .with_exec_mode(ExecMode::Real)
        .with_heartbeat(SimDuration::from_millis(500))
        .with_suspicion(SimDuration::from_secs(3));
    let spec = GridSpec::confined(2, 6).with_cfg(cfg).with_registry(registry);
    let grid = LiveGrid::launch(spec, 60.0);
    let mut client = GridClient::new(&grid);

    // 24 configurations; scale declared costs down so the demo runs in
    // seconds of wall time (the evaluation itself really executes).
    let app = AlcatelApp::with_tasks(24);
    let plan: Vec<CallSpec> = app
        .plan()
        .into_iter()
        .map(|mut c| {
            c.exec_cost /= 100.0;
            c
        })
        .collect();
    println!("submitting {} network-validation tasks", plan.len());
    let handles: Vec<_> = plan.into_iter().map(|c| client.call_async(c)).collect();

    // Fault injection: kill the preferred coordinator, restart it later.
    std::thread::sleep(Duration::from_millis(500));
    grid.crash_coordinator(0);
    println!("coordinator 0 killed");
    std::thread::sleep(Duration::from_millis(1500));
    grid.restart_coordinator(0);
    println!("coordinator 0 restarted from its durable state");

    let mut total_pairs = 0usize;
    let mut reachable = 0usize;
    for (i, h) in handles.iter().enumerate() {
        let blob = client.wait(*h, Duration::from_secs(120)).expect("result");
        // Results travel as archives; unpack the report.
        let archive = rpcv::xw::Archive::unpack(&blob.materialize()).expect("archive");
        let report: EvalReport =
            from_bytes(&archive.entries[0].data.materialize()).expect("report");
        let pairs = report.signal_loss_db.len();
        let ok = report
            .signal_loss_db
            .iter()
            .zip(&report.bandwidth_mbps)
            .filter(|(loss, bw)| loss.is_finite() && **bw > 0.0)
            .count();
        total_pairs += pairs;
        reachable += ok;
        if i % 6 == 0 {
            let worst = report.signal_loss_db.iter().cloned().fold(0.0, f64::max);
            println!("task {i:>2}: {pairs} terminal pairs evaluated, worst loss {worst:.1} dB");
        }
    }
    println!(
        "done — {}/{} terminal pairs reachable across 24 validated configurations",
        reachable, total_pairs
    );
    let dup = grid.with_coordinator(0, |c| c.db().stats().duplicate_results).unwrap_or(0);
    println!("at-least-once duplicates dropped by the coordinator: {dup}");
    grid.shutdown();
}

// Quiet the unused-import lint when Blob is only used in type positions on
// some toolchains.
#[allow(unused)]
fn _blob_hint(_: Blob) {}
