//! The three client logging strategies, side by side (paper Fig. 4).
//!
//! Submits the same workload under optimistic, non-blocking pessimistic
//! and blocking pessimistic logging and reports the client-observed
//! submission times, plus what each strategy would lose in a
//! client+coordinator double crash.
//!
//! Run with: `cargo run --release --example logging_strategies`

use rpcv::core::config::ProtocolConfig;
use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::log::LogStrategy;
use rpcv::simnet::SimTime;
use rpcv::workload::SyntheticBench;

fn submission_secs(param_bytes: u64, calls: usize, strategy: LogStrategy) -> f64 {
    let mut bench = SyntheticBench::fig4(param_bytes);
    bench.calls = calls;
    let cfg = ProtocolConfig::confined().with_log_strategy(strategy);
    let spec = GridSpec::confined(1, 8).with_cfg(cfg).with_plan(bench.plan());
    let mut grid = SimGrid::build(spec);
    grid.run_until_done(SimTime::from_secs(7200)).expect("run completes");
    let client = grid.client().expect("client");
    let first = client.metrics.submissions.values().map(|t| t.requested_at).min().unwrap();
    let last = client.metrics.submissions.values().filter_map(|t| t.interaction_end).max().unwrap();
    last.since(first).as_secs_f64()
}

fn main() {
    println!("RPC submission time, 16 calls (seconds of grid time)");
    println!(
        "{:>12}  {:>12} {:>14} {:>12}",
        "param bytes", "optimistic", "non-blocking", "blocking"
    );
    for &size in &[1_000u64, 100_000, 10_000_000, 100_000_000] {
        let opt = submission_secs(size, 16, LogStrategy::Optimistic);
        let nb = submission_secs(size, 16, LogStrategy::NonBlockingPessimistic);
        let blk = submission_secs(size, 16, LogStrategy::BlockingPessimistic);
        println!("{size:>12}  {opt:>12.3} {nb:>14.3} {blk:>12.3}");
    }
    println!();
    println!("what a client+coordinator double crash costs:");
    println!("  optimistic        — log tail lost: the application re-submits from the last");
    println!("                      durable entry (re-executing the intermediate computation)");
    println!("  non-blocking      — nothing lost once a submission interaction completed;");
    println!("    pessimistic       overlaps logging with communication (the paper's pick)");
    println!("  blocking          — nothing lost, but every submission pays the disk up front");
    println!("    pessimistic");
}
