//! The Fig. 11 partition scenario, narrated.
//!
//! "the servers suspect Lille coordinator as faulty, the client suspects
//! LRI coordinator as faulty and the two coordinators consider the other
//! one as running" — tasks and results can only flow *through* the
//! coordinator pair, and the progress condition still holds: the client
//! application progresses as long as there is a path between a client and
//! a server.
//!
//! Run with: `cargo run --release --example partition_demo`

use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::core::util::CallSpec;
use rpcv::simnet::{SimDuration, SimTime};
use rpcv::wire::Blob;

fn main() {
    let plan: Vec<CallSpec> =
        (0..24).map(|i| CallSpec::new("bench", Blob::synthetic(2048, i), 30.0, 256)).collect();
    let mut cfg = rpcv::core::config::ProtocolConfig::real_life();
    cfg.replication_period = SimDuration::from_secs(30);
    let spec = GridSpec::real_life(2, 8).with_cfg(cfg).with_plan(plan);
    let mut grid = SimGrid::build(spec);

    let lille = grid.coords[0].1;
    let lri = grid.coords[1].1;
    let client = grid.client_node;

    // Install the inconsistent views before anything flows.
    grid.world.net_mut().block_bidir(client, lri);
    for &(_, s) in &grid.servers.clone() {
        grid.world.net_mut().block_bidir(s, lille);
    }
    println!("partition installed:");
    println!("  client  ⇄  Lille      OK");
    println!("  client  ⇄  LRI        blocked");
    println!("  servers ⇄  Lille      blocked");
    println!("  servers ⇄  LRI        OK");
    println!("  Lille   ⇄  LRI        OK (the only path!)");
    println!();

    println!("minute  at_lille  at_lri  client_has");
    for minute in 0..=90u64 {
        grid.world.run_until(SimTime::from_secs(minute * 60));
        let l = grid.coordinator(0).map(|c| c.db().finished_count()).unwrap_or(0);
        let r = grid.coordinator(1).map(|c| c.db().finished_count()).unwrap_or(0);
        let have = grid.client_results();
        if minute % 2 == 0 || have >= 24 {
            println!("{minute:>6}  {l:>8}  {r:>6}  {have:>10}");
        }
        if have >= 24 {
            println!();
            println!(
                "progress condition demonstrated: every call crossed \
                 client → Lille → LRI → server and back, twice through the \
                 replication ring"
            );
            return;
        }
    }
    println!("did not converge within 90 minutes — partition demo failed");
    std::process::exit(1);
}
