//! Quickstart: a live RPC-V grid in one process.
//!
//! Starts two coordinators and four servers on the wall-clock runtime,
//! registers a real stateless service, submits calls through the
//! GridRPC-style API, and — because this is RPC-V — kills the preferred
//! coordinator mid-run and keeps going.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;

use rpcv::core::api::GridClient;
use rpcv::core::config::{ExecMode, ProtocolConfig};
use rpcv::core::grid::GridSpec;
use rpcv::core::runtime::LiveGrid;
use rpcv::core::util::CallSpec;
use rpcv::simnet::SimDuration;
use rpcv::wire::{from_bytes, to_bytes, Blob};
use rpcv::xw::{ServiceError, ServiceRegistry};

fn main() {
    // 1. A stateless service: sum of squares over a marshalled Vec<u64>.
    let mut registry = ServiceRegistry::new();
    registry.register("math/sum_of_squares", |params: &Blob, _ctx| {
        let numbers: Vec<u64> = from_bytes(&params.materialize())
            .map_err(|e| ServiceError::ExecutionFailed(e.to_string()))?;
        let sum: u64 = numbers.iter().map(|n| n * n).sum();
        Ok(Blob::from_vec(to_bytes(&sum)))
    });

    // 2. A grid: 2 coordinators, 4 servers, real service execution.
    //    Aggressive timers + 30× time compression keep the demo snappy.
    let cfg = ProtocolConfig::confined()
        .with_exec_mode(ExecMode::Real)
        .with_heartbeat(SimDuration::from_millis(500))
        .with_suspicion(SimDuration::from_secs(3));
    let spec = GridSpec::confined(2, 4).with_cfg(cfg).with_registry(registry);
    let grid = LiveGrid::launch(spec, 30.0);
    let mut client = GridClient::new(&grid);
    println!("grid up: 2 coordinators, 4 servers");

    // 3. Submit asynchronous calls (GridRPC grpc_call_async).
    let handles: Vec<_> = (1..=8u64)
        .map(|i| {
            let numbers: Vec<u64> = (1..=i * 10).collect();
            let call = CallSpec::new(
                "math/sum_of_squares",
                Blob::from_vec(to_bytes(&numbers)),
                0.5, // declared half-second execution
                16,
            );
            client.call_async(call)
        })
        .collect();
    println!("submitted {} calls", handles.len());

    // 4. Kill the preferred coordinator mid-run. RPC-V shrugs.
    std::thread::sleep(Duration::from_millis(300));
    grid.crash_coordinator(0);
    println!("killed the preferred coordinator — failover in progress");

    // 5. Collect every result (grpc_wait).
    for (i, h) in handles.iter().enumerate() {
        let blob = client.wait(*h, Duration::from_secs(60)).expect("result");
        // Real-mode results travel as archives (the server's log format).
        let archive = rpcv::xw::Archive::unpack(&blob.materialize()).expect("archive");
        let sum: u64 = from_bytes(&archive.entries[0].data.materialize()).expect("decode");
        let n = (i as u64 + 1) * 10;
        let expect: u64 = (1..=n).map(|x| x * x).sum();
        assert_eq!(sum, expect, "service must compute correctly");
        println!("call {:>2}: sum of squares 1..={n:<3} = {sum}", i + 1);
    }

    let switches = grid.with_client(|c| c.metrics.coordinator_switches).unwrap_or(0);
    println!("done — all 8 results correct, {switches} coordinator switch(es) along the way");
    grid.shutdown();
}
