//! A volatile desktop grid under churn, simulated deterministically.
//!
//! 280 Internet-connected desktop servers execute 300 tasks while servers
//! crash and restart continuously (Poisson churn, the paper's fault
//! generator).  The run is a discrete-event simulation: hours of grid time
//! pass in under a second of wall time, bit-for-bit reproducible from the
//! seed.
//!
//! Run with: `cargo run --release --example volatile_grid`

use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::simnet::{SimDuration, SimTime};
use rpcv::workload::{AlcatelApp, FaultPlan};

fn main() {
    let app = AlcatelApp { tasks: 300, seed: 42 };
    let spec = GridSpec::real_life(2, 280).with_seed(7).with_plan(app.plan());
    let mut grid = SimGrid::build(spec);

    // Churn: ~20 server crashes per minute across the fleet, 45 s downtime.
    let servers: Vec<_> = grid.servers.iter().map(|&(_, n)| n).collect();
    let plan = FaultPlan::new().poisson(
        &servers,
        20.0,
        SimDuration::from_secs(45),
        SimTime::ZERO,
        SimTime::from_secs(3600 * 6),
        99,
    );
    println!("scheduled {} crashes over the horizon", plan.crash_count());
    plan.apply(&mut grid.world);

    println!("minute  completed  crashes  duplicates");
    let mut minute = 0u64;
    let done = loop {
        grid.world.run_until(SimTime::from_secs(minute * 60));
        let completed = grid.client_results();
        let stats = grid.world.stats();
        let dup = grid.coordinator(0).map(|c| c.db().stats().duplicate_results).unwrap_or(0);
        if minute.is_multiple_of(5) || completed >= 300 {
            println!("{minute:>6}  {completed:>9}  {:>7}  {dup:>10}", stats.crashes);
        }
        if completed >= 300 {
            break Some(SimTime::from_secs(minute * 60));
        }
        minute += 1;
        if minute > 60 * 12 {
            break None;
        }
    };

    match done {
        Some(t) => {
            println!(
                "all 300 tasks completed by {t} despite {} crashes ({} messages, {:.1} MB)",
                grid.world.stats().crashes,
                grid.world.stats().sent,
                grid.world.stats().bytes_sent as f64 / 1e6,
            );
            println!(
                "trace hash {:#018x} — rerun to get the identical execution",
                grid.world.trace().hash()
            );
        }
        None => println!("did not finish within 12 virtual hours"),
    }
}
