#!/usr/bin/env python3
"""Assert the O(changed) payload invariants on a BENCH_scale.json sweep.

For every pair of cells that differ only in job count, the per-round
replication payload must stay flat (within 2x, floor 4 KiB): the sweep is
collected-heavy — clients collect every result and the harness GCs — so a
regression that re-sends collected knowledge (or any table) per round
makes the longer run's rounds fatter and trips this.  Mirrors
`check_delta_flatness` in crates/bench/benches/scale.rs, which gates the
run itself; this script gates the committed/regenerated artifact.

Usage: check_bench_flatness.py BENCH_scale.json
"""

import json
import sys


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_scale.json"
    with open(path) as f:
        doc = json.load(f)
    grid = doc["grid"]
    pairs = 0
    for a in grid:
        for b in grid:
            if (a["servers"], a["clients"]) == (b["servers"], b["clients"]) \
                    and a["jobs"] < b["jobs"]:
                pairs += 1
                lo, hi = a["delta_bytes_per_round"], b["delta_bytes_per_round"]
                assert hi <= max(lo * 2.0, 4096.0), \
                    f"delta bytes/round grew with run length: {a} -> {b}"
    assert pairs >= 1, "sweep must include a cell pair differing only in job count"
    print(f"{path}: delta flatness OK across {pairs} jobs-only cell pair(s)")


if __name__ == "__main__":
    main()
