#!/usr/bin/env python3
"""Validate committed/regenerated bench artifacts (BENCH_*.json).

Dispatches on the artifact's "bench" tag:

* scale — assert the O(changed) payload invariants: for every pair of
  cells that differ only in job count, the per-round replication payload
  must stay flat (within 2x, floor 4 KiB).  The sweep is collected-heavy —
  clients collect every result and the harness GCs — so a regression that
  re-sends collected knowledge (or any table) per round makes the longer
  run's rounds fatter and trips this.  Mirrors `check_delta_flatness` in
  crates/bench/benches/scale.rs, which gates the run itself; this script
  gates the artifact.

  Also enforces the kernel-throughput floor per cell: a full sweep must
  hold >= 300k events/sec in EVERY cell (the calendar-queue kernel's
  contract); smoke sweeps get a softer floor since CI runners are small
  and the cells tiny.  An artifact whose grid rows lack the
  events_per_sec/wall_seconds columns is rejected outright — the floor
  must never silently pass by absence.

  Schema v3 adds the bounded-memory gate: every cell reports
  resident_rows, the post-settle change-index residency of the busiest
  coordinator, and for the same jobs-only cell pairs residency must not
  grow with lifetime job count (within 2x, floor 256 rows).  Residency
  tracks LIVE jobs plus per-client watermarks; a retention regression
  that keeps collected history resident makes the 10x-jobs cell hold
  ~10x the rows and trips this.  Mirrors `check_residency_flatness` in
  crates/bench/benches/scale.rs.

  Schema v4 adds the sharded coordinator plane: every cell reports its
  shards count, payload/residency metrics are measured per BUSIEST
  shard (so the flatness gates above keep asserting per-group
  invariants — jobs-only pairs are now also matched on shards), and the
  scale-out headline is gated on sim_events_per_sec, the grid's event
  throughput in SIMULATED time: for cell pairs matched on
  servers×jobs×clients where only the shard count differs from 1, the
  S-shard cell must process >= 0.7·S× the 1-shard cell's events per
  sim-second (full sweeps; smoke cells are too small to saturate a
  coordinator group, so smoke only asserts sharding is not a
  regression, >= 0.8×).  Simulated time carries the scale-out claim
  because the kernel is serial — it interleaves every shard on one host
  thread, so S shards can never cut the host's per-event wall cost;
  what they cut is the simulated seconds the same workload occupies.
  Wall-clock events_per_sec stays gated by the 300k kernel floor
  above.  v3 artifacts are rejected — regenerate.  Mirrors
  `check_shard_scaling` in crates/bench/benches/scale.rs.

  Schema v5 adds the telemetry plane's latency columns: every cell
  reports job_p50_ms / job_p99_ms, the end-to-end job latency quantiles
  in VIRTUAL time (submission requested -> result held) read from the
  per-client log2 histograms.  Both must be present, positive, and
  ordered (p99 >= p50); the throughput floors above are asserted on the
  same rows, so the 300k floor now provably holds with telemetry (kernel
  profiling + span bookkeeping) enabled.  v4 artifacts are rejected —
  regenerate.

* ckpt — validate the checkpoint-policy sweep's schema and its headline:
  every cell completed, checkpointing policies report the bytes they paid,
  and within each volatility group the adaptive policy wastes less work
  than the from-scratch baseline — and, where churn is frequent enough to
  learn from (>= 4 faults/min), no more than the budget-matched fixed
  interval.  Mirrors `check_adaptive_wins` in crates/bench/benches/ckpt.rs.

* chaos — validate the seeded fault-schedule sweep: every plan survived
  (all safety-oracle invariants held), every plan actually mixed all four
  fault families (crash-restart storms, disk wipes, partition churn, wire
  bursts), and the sweep as a whole exercised the wire-fault plane
  (corrupted and duplicated frames > 0, with corrupt frames accounted as
  typed `bad_frames` drops).  Mirrors the per-plan `survived()` gate in
  crates/bench/benches/chaos.rs; this script gates the artifact.

With --committed, additionally reject smoke artifacts: only full sweeps
may be committed (a local `--smoke` run overwrites the same file).  For
chaos, --committed also requires the full 64-plan ladder.

Usage: check_bench_flatness.py [--committed] BENCH_scale.json|BENCH_ckpt.json|BENCH_chaos.json
"""

import json
import sys


# Kernel-throughput floors (events / wall second, per cell).  The full
# sweep's floor is the calendar-queue contract; the smoke floor is soft
# because CI runners are slow, shared and the cells too small to amortize
# startup.
SCALE_FLOOR_FULL = 300_000
SCALE_FLOOR_SMOKE = 30_000


def check_scale(doc: dict, path: str) -> None:
    assert doc["schema_version"] == 5, \
        f"{path}: scale schema is {doc['schema_version']}, expected 5 — " \
        f"regenerate the artifact (v5 added the job_p50_ms/job_p99_ms latency columns)"
    grid = doc["grid"]
    floor = SCALE_FLOOR_SMOKE if doc["smoke"] else SCALE_FLOOR_FULL
    for cell in grid:
        label = (f'{cell.get("servers")}x{cell.get("jobs")}'
                 f'x{cell.get("clients")}x{cell.get("shards")}')
        for col in ("events_per_sec", "wall_seconds", "sim_events_per_sec",
                    "resident_rows", "shards", "job_p50_ms", "job_p99_ms"):
            assert col in cell, \
                f"{path}: cell {label} lacks the {col} column — " \
                f"regenerate the artifact; its gate cannot be checked"
        assert cell["shards"] >= 1, f"{path}: cell {label} has a bad shards count"
        assert cell["events_per_sec"] >= floor, \
            f"{path}: cell {label} ran at {cell['events_per_sec']:.0f} events/sec, " \
            f"below the {floor} floor — kernel throughput regressed"
        assert cell["job_p50_ms"] > 0, \
            f"{path}: cell {label} reports no job latency — the telemetry " \
            f"plane's histograms are empty on a completed cell"
        assert cell["job_p99_ms"] >= cell["job_p50_ms"], \
            f"{path}: cell {label} has p99 {cell['job_p99_ms']} ms below " \
            f"p50 {cell['job_p50_ms']} ms — quantiles are broken"
    pairs = 0
    for a in grid:
        for b in grid:
            if (a["servers"], a["clients"], a["shards"]) \
                    == (b["servers"], b["clients"], b["shards"]) \
                    and a["jobs"] < b["jobs"]:
                pairs += 1
                lo, hi = a["delta_bytes_per_round"], b["delta_bytes_per_round"]
                assert hi <= max(lo * 2.0, 4096.0), \
                    f"delta bytes/round grew with run length: {a} -> {b}"
                lo_r, hi_r = a["resident_rows"], b["resident_rows"]
                assert hi_r <= max(lo_r * 2.0, 256.0), \
                    f"resident rows grew with lifetime job count — " \
                    f"coordinator memory is not bounded: {a} -> {b}"
    assert pairs >= 1, "sweep must include a cell pair differing only in job count"
    # The scale-out headline: S shards must buy near-linear throughput
    # in simulated time at a fixed servers×jobs×clients cell (full
    # sweeps), and must never regress it (smoke).
    ladder = 0
    for a in grid:
        for b in grid:
            if (a["servers"], a["jobs"], a["clients"]) \
                    == (b["servers"], b["jobs"], b["clients"]) \
                    and a["shards"] == 1 and b["shards"] > 1:
                ladder += 1
                need = a["sim_events_per_sec"] * (
                    0.8 if doc["smoke"] else 0.7 * b["shards"])
                assert b["sim_events_per_sec"] >= need, \
                    f"{path}: shard scale-out below the near-linear floor: " \
                    f'{a["servers"]}x{a["jobs"]}x{a["clients"]} runs ' \
                    f'{a["sim_events_per_sec"]:.0f} ev/sim-s at 1 shard but ' \
                    f'{b["sim_events_per_sec"]:.0f} ev/sim-s at {b["shards"]} ' \
                    f"shards (need >= {need:.0f})"
    assert ladder >= 1, \
        "sweep must include a shards ladder over a fixed servers×jobs×clients cell"
    slowest = min(c["events_per_sec"] for c in grid)
    peak = max(c["resident_rows"] for c in grid)
    widest = max(c["shards"] for c in grid)
    worst_p99 = max(c["job_p99_ms"] for c in grid)
    print(f"{path}: delta + residency flatness OK across {pairs} jobs-only "
          f"cell pair(s); {ladder} shard-ladder pair(s) hold the scale-out "
          f"floor (widest {widest} shards); peak residency {peak} rows; "
          f"slowest cell {slowest:.0f} events/sec (floor {floor}, telemetry on); "
          f"worst job p99 {worst_p99:.1f} ms")


def check_ckpt(doc: dict, path: str) -> None:
    assert doc["schema_version"] == 1, "unknown ckpt schema version"
    cells = doc["cells"]
    assert len(cells) >= 3, "need baseline, adaptive and budget-matched cells"
    groups = sorted({c["faults_per_min"] for c in cells})
    for cell in cells:
        assert cell["completed"] is True, f"cell did not complete: {cell}"
        assert cell["spent_units"] >= cell["required_units"], f"bad accounting: {cell}"
        if cell["policy"] == "off":
            assert cell["ckpt_bytes"] == 0, f"baseline must pay no checkpoint bytes: {cell}"
        else:
            assert cell["ckpt_bytes"] > 0, f"checkpointing cell paid no bytes: {cell}"
    checked = 0
    for g in groups:
        by = {c["policy"]: c for c in cells if c["faults_per_min"] == g}
        off, adaptive = by["off"], by["adaptive"]
        assert adaptive["wasted_units"] < off["wasted_units"], \
            f"@{g}/min: adaptive must beat from-scratch re-execution: {adaptive} vs {off}"
        if g >= 4.0:
            matched = by["fixed-matched"]
            assert adaptive["wasted_units"] <= matched["wasted_units"], \
                f"@{g}/min: adaptive must beat the budget-matched fixed interval: " \
                f"{adaptive} vs {matched}"
            assert adaptive["ckpt_bytes"] <= matched["ckpt_bytes"] * 1.3, \
                f"@{g}/min: comparison not budget-matched: {adaptive} vs {matched}"
            checked += 1
    assert checked >= 1, "sweep must include a >= 4 faults/min group for the headline"
    print(f"{path}: ckpt sweep OK ({len(cells)} cells, "
          f"adaptive wins the budget-matched comparison in {checked} group(s))")


def check_chaos(doc: dict, path: str, committed: bool) -> None:
    assert doc["schema_version"] == 2, \
        f"{path}: chaos schema is {doc['schema_version']}, expected 2 — " \
        f"regenerate the artifact (v2 embeds the per-plan recovery-gap histogram)"
    plans = doc["plans"]
    totals = doc["totals"]
    assert len(plans) >= 1, "chaos sweep must contain at least one plan"
    if committed:
        assert len(plans) >= 64, \
            f"committed {path} holds {len(plans)} plans — the full sweep runs >= 64"
    for p in plans:
        tag = f'seed {p["seed"]:#x} @ {p["intensity"]}'
        assert p["survived"] is True, \
            f"{path}: plan {tag} violated a safety invariant — {p}"
        for family in ("crashes", "wipes", "partitions", "bursts"):
            assert p[family] >= 1, \
                f"{path}: plan {tag} scheduled no {family} — every plan mixes all families"
        assert p["bad_frames"] <= p["corrupt_frames"], \
            f"{path}: plan {tag} counted more bad frames than corruptions — {p}"
        assert p["results"] == p["jobs"], \
            f"{path}: plan {tag} delivered {p['results']}/{p['jobs']} results"
        hist = p["recovery_gap_hist"]
        assert hist["p99_ms"] >= hist["p50_ms"] >= 0, \
            f"{path}: plan {tag} has broken recovery-gap quantiles — {hist}"
        assert hist["count"] == sum(n for _, n in hist["buckets"]), \
            f"{path}: plan {tag} recovery-gap bucket occupancy disagrees " \
            f"with its count — {hist}"
    assert totals["survived"] == totals["plans"] == len(plans), \
        f"{path}: totals disagree with the plan list: {totals}"
    assert totals["corrupt_frames"] > 0 and totals["dup_frames"] > 0, \
        f"{path}: the sweep never exercised the wire-fault plane: {totals}"
    recovered = sum(1 for p in plans if p["recovery_makespan_s"] > 0)
    print(f"{path}: chaos sweep OK ({len(plans)} plans, 100% survival, "
          f"{totals['corrupt_frames']} corrupt / {totals['dup_frames']} dup frames absorbed, "
          f"{recovered} plan(s) measured a post-heal recovery makespan)")


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--committed"]
    committed = "--committed" in sys.argv[1:]
    path = args[0] if args else "BENCH_scale.json"
    with open(path) as f:
        doc = json.load(f)
    if committed:
        assert doc["smoke"] is False, \
            f"committed {path} is a smoke run — regenerate with the full sweep"
    if doc["bench"] == "scale":
        check_scale(doc, path)
    elif doc["bench"] == "ckpt":
        check_ckpt(doc, path)
    elif doc["bench"] == "chaos":
        check_chaos(doc, path, committed)
    else:
        raise AssertionError(f"unknown bench tag {doc['bench']!r} in {path}")


if __name__ == "__main__":
    main()
