//! # rpcv — fault-tolerant RPC for Internet-connected desktop grids
//!
//! A from-scratch Rust reproduction of *"RPC-V: Toward Fault-Tolerant RPC
//! for Internet Connected Desktop Grids with Volatile Nodes"* (Djilali,
//! Hérault, Lodygensky, Morlier, Fedak, Cappello — SuperComputing 2004).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `rpcv-core` | the protocol: client/coordinator/server actors, passive ring replication, GridRPC-style API, live runtime |
//! | [`simnet`] | `rpcv-simnet` | deterministic discrete-event grid simulator |
//! | [`wire`] | `rpcv-wire` | binary marshalling (varints, blobs, CRC-64) |
//! | [`log`] | `rpcv-log` | sender-based message logging (3 strategies) |
//! | [`detect`] | `rpcv-detect` | heartbeat fault suspicion + coordinator lists |
//! | [`store`] | `rpcv-store` | coordinator job/task/archive/checkpoint database |
//! | [`ckpt`] | `rpcv-ckpt` | adaptive task checkpointing: policies, volatility estimation, checkpoint frames |
//! | [`xw`] | `rpcv-xw` | XtremWeb-like middleware substrate |
//! | [`workload`] | `rpcv-workload` | synthetic + Alcatel-like workloads, fault plans |
//!
//! ## Two ways to run a grid
//!
//! **Simulated** (deterministic virtual time — what the experiment
//! harnesses use):
//!
//! ```
//! use rpcv::core::grid::{GridSpec, SimGrid};
//! use rpcv::core::util::CallSpec;
//! use rpcv::simnet::SimTime;
//! use rpcv::wire::Blob;
//!
//! let plan = (0..4).map(|i| CallSpec::new("svc", Blob::synthetic(256, i), 1.0, 64)).collect();
//! let mut grid = SimGrid::build(GridSpec::confined(2, 4).with_plan(plan));
//! grid.run_until_done(SimTime::from_secs(300)).expect("completes");
//! assert_eq!(grid.client_results(), 4);
//! ```
//!
//! **Live** (wall clock, real service execution, live fault injection —
//! see `examples/quickstart.rs`): [`core::runtime::LiveGrid`] plus
//! [`core::api::GridClient`].

pub use rpcv_ckpt as ckpt;
pub use rpcv_core as core;
pub use rpcv_detect as detect;
pub use rpcv_log as log;
pub use rpcv_simnet as simnet;
pub use rpcv_store as store;
pub use rpcv_wire as wire;
pub use rpcv_workload as workload;
pub use rpcv_xw as xw;
