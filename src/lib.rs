//! # rpcv — fault-tolerant RPC for Internet-connected desktop grids
//!
//! A from-scratch Rust reproduction of *"RPC-V: Toward Fault-Tolerant RPC
//! for Internet Connected Desktop Grids with Volatile Nodes"* (Djilali,
//! Hérault, Lodygensky, Morlier, Fedak, Cappello — SuperComputing 2004).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `rpcv-core` | the protocol: client/coordinator/server actors, passive ring replication, GridRPC-style API, live runtime |
//! | [`simnet`] | `rpcv-simnet` | deterministic discrete-event grid simulator |
//! | [`wire`] | `rpcv-wire` | binary marshalling (varints, blobs, CRC-64) |
//! | [`log`] | `rpcv-log` | sender-based message logging (3 strategies) |
//! | [`detect`] | `rpcv-detect` | heartbeat fault suspicion + coordinator lists |
//! | [`store`] | `rpcv-store` | coordinator job/task/archive/checkpoint database |
//! | [`ckpt`] | `rpcv-ckpt` | adaptive task checkpointing: policies, volatility estimation, checkpoint frames |
//! | [`xw`] | `rpcv-xw` | XtremWeb-like middleware substrate |
//! | [`workload`] | `rpcv-workload` | synthetic + Alcatel-like workloads, fault plans |
//! | [`obs`] | `rpcv-obs` | telemetry plane: metrics registry, virtual-time histograms, job lifecycle spans, sealed snapshots |
//!
//! ## Two ways to run a grid
//!
//! **Simulated** (deterministic virtual time — what the experiment
//! harnesses use):
//!
//! ```
//! use rpcv::core::grid::{GridSpec, SimGrid};
//! use rpcv::core::util::CallSpec;
//! use rpcv::simnet::SimTime;
//! use rpcv::wire::Blob;
//!
//! let plan = (0..4).map(|i| CallSpec::new("svc", Blob::synthetic(256, i), 1.0, 64)).collect();
//! let mut grid = SimGrid::build(GridSpec::confined(2, 4).with_plan(plan));
//! grid.run_until_done(SimTime::from_secs(300)).expect("completes");
//! assert_eq!(grid.client_results(), 4);
//! ```
//!
//! **Live** (wall clock, real service execution, live fault injection —
//! see `examples/quickstart.rs`): [`core::runtime::LiveGrid`] plus
//! [`core::api::GridClient`].
//!
//! ## Bounded coordinator memory: snapshot bootstrap
//!
//! A coordinator's change index holds O(live jobs), not O(lifetime
//! jobs): once a client durably collected a delivered prefix and every
//! ring replica acked past it, [`store::CoordinatorDb::prune_retired`]
//! retires those rows down to one per-client watermark.  A replica
//! whose feed base predates the resulting *delta floor* can no longer
//! catch up row-by-row — it bootstraps from a CRC-64-sealed
//! [`store::Snapshot`] of the live state plus the version tail, and
//! lands row-for-row identical to the live feed's view:
//!
//! ```
//! use rpcv::store::{CoordinatorDb, Snapshot};
//! use rpcv::simnet::SimTime;
//! use rpcv::wire::Blob;
//! use rpcv::xw::{ClientKey, CoordId, JobKey, JobSpec, ServerId};
//!
//! let client = ClientKey::new(1, 1);
//! let job = |seq| JobSpec::new(JobKey::new(client, seq), "svc", Blob::synthetic(256, seq));
//!
//! // Primary: three jobs run, get collected by the client, and GC.
//! let mut primary = CoordinatorDb::new(CoordId(1));
//! for seq in 1..=3 {
//!     primary.register_job(job(seq));
//! }
//! while let (Some(t), _) = primary.next_pending(ServerId(1), SimTime::ZERO) {
//!     primary.complete_task(t.id, t.job, Blob::synthetic(64, t.job.seq), ServerId(1));
//! }
//! primary.mark_collected(client, &[1, 2, 3]);
//! primary.gc_collected();
//!
//! // Every consumer acked the head: the delivered prefix retires and
//! // the change index shrinks to the per-client watermark row.
//! assert_eq!(primary.prune_retired(primary.version()), 3);
//! assert_eq!(primary.resident_rows(), 1);
//! assert!(primary.delta_floor() > 0);
//! primary.register_job(job(4)); // live work continues on top
//!
//! // A replica asking for the feed from version 0 is below the floor —
//! // the wire answer is a sealed snapshot (plus the version tail).
//! let base = 0;
//! assert!(base < primary.delta_floor());
//! let snap = Snapshot::open(&primary.snapshot().seal()).expect("CRC-64 seal verifies");
//!
//! let mut replica = CoordinatorDb::new(CoordId(2));
//! replica.apply_snapshot(&snap);
//! replica.apply_delta(&primary.delta_since(snap.version));
//!
//! // Row-for-row: same watermark, same delivered knowledge, same live set.
//! assert_eq!(replica.retired_watermark(client), 3);
//! assert!(replica.has_collected_knowledge(&JobKey::new(client, 2)));
//! assert_eq!(replica.stats().jobs, primary.stats().jobs);
//! assert_eq!(replica.resident_rows(), primary.resident_rows());
//! let (tid, _) = replica.reexecute_job(JobKey::new(client, 1));
//! assert!(tid.is_none(), "delivered work is never re-executed");
//! ```

pub use rpcv_ckpt as ckpt;
pub use rpcv_core as core;
pub use rpcv_detect as detect;
pub use rpcv_log as log;
pub use rpcv_obs as obs;
pub use rpcv_simnet as simnet;
pub use rpcv_store as store;
pub use rpcv_wire as wire;
pub use rpcv_workload as workload;
pub use rpcv_xw as xw;
