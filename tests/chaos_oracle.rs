//! End-to-end chaos sweep: the [`ChaosOracle`] drives a full confined
//! grid under seeded fault plans mixing crash-restart storms, partition
//! churn, disk wipes and wire-fault bursts, then audits the post-heal
//! safety invariants.  The sweep must hold at *every* seed × intensity —
//! one surviving seed is luck, a property is a guarantee.

use proptest::prelude::*;
use rpcv::core::chaos::{ChaosConfig, ChaosOracle};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Safety under arbitrary seeded chaos: the grid completes, delivers
    /// every result exactly once, never re-executes collected work, and
    /// accounts every corrupted frame as a typed drop.
    #[test]
    fn oracle_survives_any_seed_and_intensity(
        seed in any::<u64>(),
        intensity_pct in 5u32..=100,
    ) {
        let intensity = intensity_pct as f64 / 100.0;
        let report = ChaosOracle::seeded(seed, intensity).run();
        prop_assert!(
            report.survived(),
            "seed {seed:#x} intensity {intensity:.2} violated: {:?}",
            report.violations
        );
        prop_assert_eq!(report.results, report.jobs);
        // The generator promises every fault family at any intensity.
        prop_assert!(report.counts.crashes >= 1, "plan must crash someone");
        prop_assert!(report.counts.partitions >= 1, "plan must partition");
        prop_assert!(report.counts.wipes >= 1, "plan must wipe a disk");
        prop_assert!(report.counts.bursts >= 1, "plan must degrade the fabric");
        prop_assert!(
            report.counts.heals + report.counts.restarts
                == report.counts.partitions + report.counts.crashes,
            "every fault heals"
        );
        // Wire-fault accounting: every corruption is either garbled
        // (delivered mangled) or poisoned (typed drop), nothing vanishes.
        prop_assert_eq!(report.garbled + report.poisoned, report.stats.corrupted);
        prop_assert!(report.bad_frames <= report.poisoned);
    }

    /// The same safety sweep on a *sharded* coordinator plane: two shards,
    /// four clients (hashing across both), every invariant unchanged —
    /// exactly-once per owning client, post-heal quiescence, monotone
    /// completion, drained deltas, and exact corruption accounting.  Shard
    /// count must never weaken a safety guarantee.
    #[test]
    fn sharded_oracle_holds_every_invariant(
        seed in any::<u64>(),
        intensity_pct in 5u32..=100,
    ) {
        let intensity = intensity_pct as f64 / 100.0;
        let cfg = ChaosConfig::new(seed, intensity).with_shards(2, 4);
        let report = ChaosOracle::new(cfg).run();
        prop_assert!(
            report.survived(),
            "sharded seed {seed:#x} intensity {intensity:.2} violated: {:?}",
            report.violations
        );
        prop_assert_eq!(report.results, report.jobs);
        prop_assert_eq!(report.garbled + report.poisoned, report.stats.corrupted);
        prop_assert!(report.bad_frames <= report.poisoned);
    }

    /// The whole oracle — plan, grid, verdict — replays bit-identically
    /// from its seed, so any sweep failure is a one-line repro.
    #[test]
    fn oracle_verdict_is_replayable(seed in any::<u64>()) {
        let a = ChaosOracle::seeded(seed, 0.6).run();
        let b = ChaosOracle::seeded(seed, 0.6).run();
        prop_assert_eq!(a.done_at, b.done_at);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.bad_frames, b.bad_frames);
        prop_assert_eq!(a.violations, b.violations);
    }
}
