//! The §5.1 synchronization-cost crash matrix, as behaviour tests.
//!
//! The paper analyzes what each logging strategy costs after each crash
//! combination: "If only one of the components has crashed, the
//! synchronization times for the three protocols are identical ... When
//! both have crashed, all logs have been lost in the optimistic protocol.
//! Thus, the application has to re-execute all the RPC submissions ...
//! This is not the case for pessimistic logging where logs can be sent
//! immediately to the coordinator."

use rpcv::core::config::ProtocolConfig;
use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::core::util::CallSpec;
use rpcv::log::LogStrategy;
use rpcv::simnet::{SimDuration, SimTime};
use rpcv::wire::Blob;

fn plan(n: usize) -> Vec<CallSpec> {
    (0..n).map(|i| CallSpec::new("b", Blob::synthetic(10_000, i as u64), 3.0, 128)).collect()
}

fn grid(strategy: LogStrategy) -> SimGrid {
    let cfg = ProtocolConfig::confined()
        .with_log_strategy(strategy)
        .with_heartbeat(SimDuration::from_secs(1));
    SimGrid::build(GridSpec::confined(1, 4).with_cfg(cfg).with_plan(plan(8)))
}

/// Client crash alone: every strategy recovers every call (durable-log
/// replay plus coordinator-side registration make the strategies
/// equivalent, exactly as the paper states).
#[test]
fn client_crash_alone_recovers_under_every_strategy() {
    for strategy in LogStrategy::ALL {
        let mut g = grid(strategy);
        let client = g.client_node;
        g.world.schedule_control(SimTime::from_secs(4), rpcv::simnet::Control::Crash(client));
        g.world.schedule_control(SimTime::from_secs(8), rpcv::simnet::Control::Restart(client));
        g.run_until_done(SimTime::from_secs(1800))
            .unwrap_or_else(|| panic!("{} must recover from client crash", strategy.name()));
        assert_eq!(g.client_results(), 8, "{}", strategy.name());
    }
}

/// Coordinator crash alone (durable database): identical outcome for all
/// three strategies — "client logs can be lost on crash only".
#[test]
fn coordinator_crash_alone_recovers_under_every_strategy() {
    for strategy in LogStrategy::ALL {
        let mut g = grid(strategy);
        let c0 = g.coords[0].1;
        g.world.schedule_control(SimTime::from_secs(4), rpcv::simnet::Control::Crash(c0));
        g.world.schedule_control(SimTime::from_secs(10), rpcv::simnet::Control::Restart(c0));
        g.run_until_done(SimTime::from_secs(1800))
            .unwrap_or_else(|| panic!("{} must recover from coordinator crash", strategy.name()));
        assert_eq!(g.client_results(), 8, "{}", strategy.name());
    }
}

/// The double crash with a *wiped* coordinator: pessimistic client logs
/// resend everything; the optimistic client whose log tail was still in
/// the write-back cache loses those submissions — the paper's "the
/// application has to re-execute all the RPC submissions" case, which our
/// plan-driven client performs automatically (re-submission from the
/// application plan).
#[test]
fn double_crash_pessimistic_resends_from_logs() {
    for strategy in [LogStrategy::BlockingPessimistic, LogStrategy::NonBlockingPessimistic] {
        let mut g = grid(strategy);
        let client = g.client_node;
        let c0 = g.coords[0].1;
        // Crash both right after the submissions; wipe the coordinator so
        // only the client's durable log can rebuild the state.
        g.world.run_until(SimTime::from_secs(3));
        g.world.crash_now(client);
        g.world.crash_now(c0);
        g.world.wipe_durable(c0);
        g.world.restart_now(client);
        g.world.restart_now(c0);
        g.run_until_done(SimTime::from_secs(1800))
            .unwrap_or_else(|| panic!("{} must survive the double crash", strategy.name()));
        assert_eq!(g.client_results(), 8, "{}", strategy.name());
        // The durable log replay means no duplicate registrations either.
        let coord = g.coordinator(0).unwrap();
        assert_eq!(coord.db().stats().jobs, 8, "{}", strategy.name());
    }
}

/// Optimistic double crash: submissions still in the cache die with the
/// client; the *application plan* re-submits them (at-least-once), so the
/// run completes but with re-executed submissions — measurably more work.
#[test]
fn double_crash_optimistic_reexecutes_submissions() {
    let mut g = grid(LogStrategy::Optimistic);
    let client = g.client_node;
    let c0 = g.coords[0].1;
    g.world.run_until(SimTime::from_secs(3));
    g.world.crash_now(client);
    g.world.crash_now(c0);
    g.world.wipe_durable(c0);
    g.world.restart_now(client);
    g.world.restart_now(c0);
    g.run_until_done(SimTime::from_secs(1800)).expect("optimistic still completes");
    assert_eq!(g.client_results(), 8);
}

/// Complete-knowledge replication: the primary dies *after* the client
/// durably collected every result but *before* any GC ran.  The promoted
/// successor learned "finished without archive" for all jobs through
/// replication — without collected marks in the delta it would schedule
/// them all for pointless re-execution once the missing-archive horizon
/// passes (the PR-3 "Collected is local knowledge" leak).  With the
/// collection acknowledgements riding the same delta, it must re-execute
/// zero jobs and re-acquire zero archives.
#[test]
fn failover_after_collection_never_reexecutes_collected_jobs() {
    let mut cfg = ProtocolConfig::confined()
        .with_heartbeat(SimDuration::from_secs(1))
        .with_suspicion(SimDuration::from_secs(5))
        // One long replication period: the whole submit→execute→collect
        // cycle fits before the first round, so the successor learns
        // "finished" and "collected" from the very same delta.
        .with_replication_period(SimDuration::from_secs(20));
    // A short missing-archive timeout so a re-execution leak would fire
    // well inside the test horizon (the effective horizon still scales to
    // 3 replication periods = 60 s).
    cfg.missing_archive_timeout = SimDuration::from_secs(10);
    let plan: Vec<CallSpec> =
        (0..8).map(|i| CallSpec::new("b", Blob::synthetic(10_000, i), 2.0, 128)).collect();
    let mut g = SimGrid::build(GridSpec::confined(2, 4).with_cfg(cfg).with_plan(plan));

    let done = g.run_until_done(SimTime::from_secs(1800)).expect("workload completes");
    assert!(
        done < SimTime::from_secs(18),
        "workload must finish before the first replication round, done at {done:?}"
    );
    // Let the collection acks land on the primary (beats) and the t=20s
    // replication round carry the complete knowledge to the successor.
    g.world.run_until(SimTime::from_secs(25));
    let client_key = g.client_key;
    let jobs: Vec<_> = (1..=8u64).map(|seq| rpcv::xw::JobKey::new(client_key, seq)).collect();
    {
        let successor = g.coordinator(1).expect("successor up");
        assert!(
            successor.metrics.collected_marks_applied >= 8,
            "collection acks must arrive through the replication delta, got {}",
            successor.metrics.collected_marks_applied
        );
        for job in &jobs {
            assert!(successor.db().has_collected_knowledge(job), "collected {job:?} replicated");
            assert!(!successor.db().wants_archive(job), "no archive re-acquisition for {job:?}");
        }
    }
    let tasks_before = g.coordinator(1).unwrap().db().stats().tasks;

    // The primary dies for good — before any GC ever ran (its archives die
    // with it).  The successor inherits the grid.
    g.world.crash_now(g.coords[0].1);
    g.world.run_until(SimTime::from_secs(150)); // well past the 60 s re-execution horizon

    let successor = g.coordinator(1).expect("successor up");
    assert_eq!(successor.metrics.reexecutions, 0, "delivered work must never be re-executed");
    let stats = successor.db().stats();
    assert_eq!(stats.tasks, tasks_before, "no new instances dispatched after failover");
    assert_eq!(stats.pending, 0);
    assert_eq!(stats.ongoing, 0);
    // The client's results are untouched by the failover.
    assert_eq!(g.client_results(), 8);
}

/// Pruned-feed failover: the successor is cut off before the first
/// replication round, so the primary — seeing no live successor — runs
/// its delivered prefix through retention and its delta feed develops a
/// floor.  After the heal the successor's base (0) is below that floor:
/// the round must ship a sealed snapshot instead of an (incomplete)
/// delta, and the successor bootstrapped from `{snapshot, tail}` must
/// re-execute zero collected jobs when the primary then dies for good.
#[test]
fn pruned_feed_successor_bootstraps_via_snapshot() {
    let mut cfg = ProtocolConfig::confined()
        .with_heartbeat(SimDuration::from_secs(1))
        .with_suspicion(SimDuration::from_secs(4))
        .with_replication_period(SimDuration::from_secs(4));
    cfg.coord_retry = SimDuration::from_secs(10);
    cfg.missing_archive_timeout = SimDuration::from_secs(10);
    let plan: Vec<CallSpec> =
        (0..8).map(|i| CallSpec::new("b", Blob::synthetic(10_000, i), 2.0, 128)).collect();
    let mut g = SimGrid::build(GridSpec::confined(2, 4).with_cfg(cfg).with_plan(plan));
    let (c0, c1) = (g.coords[0].1, g.coords[1].1);

    // Coordinator link down from the start: no delta ever reaches the
    // successor, and the primary's replication rounds time out.
    g.world.schedule_control(
        SimTime::from_millis(1),
        rpcv::simnet::Control::Block { from: c0, to: c1, bidir: true },
    );
    g.run_until_done(SimTime::from_secs(1800)).expect("workload completes on the primary");
    assert_eq!(g.client_results(), 8);
    // Collection acks ride the beats; the paper's explicit GC reclaims
    // the delivered archives, making the jobs retention-eligible.
    g.world.run_until(SimTime::from_secs(25));
    g.world.actor_mut::<rpcv::core::coordinator::CoordinatorActor>(c0).unwrap().gc_now();
    g.world.run_until(SimTime::from_secs(35));
    {
        let primary = g.coordinator(0).expect("primary up");
        assert!(primary.db().delta_floor() > 0, "retention must have pruned the delivered work");
        assert_eq!(primary.db().retired_count(), 8, "all delivered jobs retired");
        assert!(
            primary.db().resident_rows() < 8,
            "resident rows track live work, got {}",
            primary.db().resident_rows()
        );
        // Lifetime counters survive the pruning.
        assert_eq!(primary.db().stats().jobs, 8);
        assert_eq!(primary.db().finished_count(), 8);
    }

    // Heal: the ring re-forms, and the successor's base 0 < floor forces
    // the snapshot path.
    g.world.schedule_control(
        SimTime::from_secs(35),
        rpcv::simnet::Control::Unblock { from: c0, to: c1, bidir: true },
    );
    g.world.run_until(SimTime::from_secs(70));
    assert!(g.coordinator(0).unwrap().metrics.snapshots_sent >= 1, "snapshot path must fire");
    let tasks_before = {
        let successor = g.coordinator(1).expect("successor up");
        assert!(successor.metrics.snapshots_applied >= 1, "successor must apply the snapshot");
        assert_eq!(successor.metrics.bad_frames, 0, "the sealed frame verifies");
        assert_eq!(successor.db().retired_count(), 8, "watermarks carry the delivered prefix");
        for seq in 1..=8u64 {
            let job = rpcv::xw::JobKey::new(g.client_key, seq);
            assert!(successor.db().has_collected_knowledge(&job), "delivered {job:?} known");
            assert!(!successor.db().wants_archive(&job), "no re-acquisition of {job:?}");
        }
        assert_eq!(successor.db().client_max(g.client_key), 8, "replay fence replicated");
        successor.db().stats().tasks
    };

    // The primary dies for good; the bootstrapped successor inherits the
    // grid and must re-execute nothing.
    g.world.crash_now(c0);
    g.world.run_until(SimTime::from_secs(200)); // far past the re-execution horizon
    let successor = g.coordinator(1).expect("successor up");
    assert_eq!(successor.metrics.reexecutions, 0, "delivered work must never be re-executed");
    let stats = successor.db().stats();
    assert_eq!(stats.tasks, tasks_before, "no new instances after failover");
    assert_eq!(stats.pending, 0);
    assert_eq!(stats.ongoing, 0);
    assert_eq!(g.client_results(), 8);
}

/// Gap detection: the successor loses its durable state entirely (crash +
/// wipe) while the primary's ack record for it still points past the
/// retention floor.  The next delta arrives with a base the successor
/// never applied — it must refuse it unacked and request a snapshot
/// reseed, ending fully re-seeded with zero re-executions.
#[test]
fn wiped_successor_detects_feed_gap_and_requests_snapshot() {
    let mut cfg = ProtocolConfig::confined()
        .with_heartbeat(SimDuration::from_secs(1))
        .with_suspicion(SimDuration::from_secs(4))
        .with_replication_period(SimDuration::from_secs(4));
    cfg.missing_archive_timeout = SimDuration::from_secs(10);
    let plan: Vec<CallSpec> =
        (0..8).map(|i| CallSpec::new("b", Blob::synthetic(10_000, i), 2.0, 128)).collect();
    let mut g = SimGrid::build(GridSpec::confined(2, 4).with_cfg(cfg).with_plan(plan));
    let (c0, c1) = (g.coords[0].1, g.coords[1].1);

    g.run_until_done(SimTime::from_secs(1800)).expect("workload completes");
    g.world.run_until(SimTime::from_secs(25));
    g.world.actor_mut::<rpcv::core::coordinator::CoordinatorActor>(c0).unwrap().gc_now();
    // Let replication acks catch up and retention prune the primary.
    g.world.run_until(SimTime::from_secs(45));
    assert!(g.coordinator(0).unwrap().db().delta_floor() > 0, "feed must have a floor");

    // The successor loses everything; the primary's ack record is stale.
    g.world.crash_now(c1);
    g.world.wipe_durable(c1);
    g.world.restart_now(c1);
    g.world.run_until(SimTime::from_secs(90));

    let primary = g.coordinator(0).expect("primary up");
    assert!(
        primary.rx_counts.get("SnapshotRequest").copied().unwrap_or(0) >= 1,
        "the wiped successor must ask to be reseeded"
    );
    assert!(primary.metrics.snapshots_sent >= 1);
    let successor = g.coordinator(1).expect("successor up");
    assert!(successor.metrics.snapshots_applied >= 1);
    assert_eq!(successor.db().retired_count(), 8, "reseeded with the delivered prefix");
    for seq in 1..=8u64 {
        let job = rpcv::xw::JobKey::new(g.client_key, seq);
        assert!(successor.db().has_collected_knowledge(&job));
    }
    // And the reseeded replica never re-executes delivered work.
    g.world.crash_now(c0);
    g.world.run_until(SimTime::from_secs(220));
    let successor = g.coordinator(1).expect("successor up");
    assert_eq!(successor.metrics.reexecutions, 0);
    assert_eq!(successor.db().stats().pending, 0);
    assert_eq!(g.client_results(), 8);
}

/// Partition through the coordinator group mid-run, primary on the
/// minority side (the paper's Fig. 11 progress condition, sharpened into
/// a single-primary audit).  The majority side — successor, client, all
/// servers — must elect the successor and finish the workload; after the
/// heal the demoted ex-primary's stale replies are fenced by the
/// coordinator-epoch reconciliation, so nothing is double-dispatched,
/// double-delivered or re-executed.
#[test]
fn coordinator_partition_keeps_a_single_primary() {
    // Replication 4s makes the peer-suspicion horizon (3× replication)
    // much longer than the server/client suspicion: the majority's
    // servers fail over and hand their finished results to the successor
    // *before* it writes the fenced predecessor off and releases held
    // ongoing tasks — so complete knowledge, not luck, prevents
    // re-dispatch.
    let cfg = ProtocolConfig::confined()
        .with_heartbeat(SimDuration::from_secs(1))
        .with_suspicion(SimDuration::from_secs(4))
        .with_replication_period(SimDuration::from_secs(4));
    let plan: Vec<CallSpec> =
        (0..8).map(|i| CallSpec::new("b", Blob::synthetic(10_000, i), 5.0, 128)).collect();
    let mut g = SimGrid::build(GridSpec::confined(2, 4).with_cfg(cfg).with_plan(plan));
    let primary = g.coords[0].1;
    let mut majority = vec![g.coords[1].1, g.client_node];
    majority.extend(g.servers.iter().map(|&(_, n)| n));

    // Cut the primary away from every majority node mid-run.  The cut
    // lands just after a replication round has shipped every dispatch
    // (rounds every 2s, the second wave is placed ~6.5s), so the
    // successor holds complete knowledge and must not re-dispatch —
    // executions themselves are still in flight when the fabric splits.
    let cut = SimTime::from_millis(8600);
    let heal = SimTime::from_secs(30);
    for &node in &majority {
        g.world.schedule_control(
            cut,
            rpcv::simnet::Control::Block { from: primary, to: node, bidir: true },
        );
        g.world.schedule_control(
            heal,
            rpcv::simnet::Control::Unblock { from: primary, to: node, bidir: true },
        );
    }

    g.run_until_done(SimTime::from_secs(1800)).expect("majority side must make progress");
    // Let the heal pass and the demoted primary re-integrate (its stale
    // replies and replication deltas all land in this window).
    g.world.run_until(SimTime::from_secs(60));

    // Exactly-once delivery to the owning client.
    assert_eq!(g.client_results(), 8);
    let client = g.client().expect("client up");
    let seqs: Vec<u64> = client.metrics.results_received.keys().copied().collect();
    assert_eq!(seqs, (1..=8).collect::<Vec<u64>>(), "each result exactly once");
    assert!(client.metrics.coordinator_switches >= 1, "client must fail over to the successor");

    // Single-primary semantics: one execution per job grid-wide — the
    // successor never re-dispatched work the fenced ex-primary had placed.
    let executed: u64 = (0..4).map(|i| g.server(i).unwrap().metrics.executed).sum();
    assert_eq!(executed, 8, "no job is double-dispatched across the partition");
    for i in 0..2 {
        let c = g.coordinator(i).expect("both coordinators up after heal");
        assert_eq!(c.metrics.reexecutions, 0, "coordinator {i} must not re-execute");
        assert_eq!(c.db().stats().duplicate_results, 0, "coordinator {i} sees no duplicates");
        assert_eq!(c.db().stats().jobs, 8, "coordinator {i} holds the full job set");
    }

    // Post-heal quiescence: the reunified grid does nothing further.
    g.world.run_until(SimTime::from_secs(90));
    let executed_after: u64 = (0..4).map(|i| g.server(i).unwrap().metrics.executed).sum();
    assert_eq!(executed_after, executed, "stale ex-primary state must not revive work");
}

/// A lost `TaskDoneAck` must not strand the server's pessimistic log once
/// the result is delivered: the coordinator stored the archive but its ack
/// never reached the server (one-way outage), and by the time the link
/// heals the client has collected the result.  The coordinator will never
/// request the offered archive (`Collected` ⇒ not wanted), so it must
/// *settle* the offer explicitly — otherwise the entry is re-offered
/// forever and the server's log GC can never reclaim it.
#[test]
fn delivered_results_settle_stranded_server_logs() {
    let cfg = ProtocolConfig::confined().with_heartbeat(SimDuration::from_secs(1));
    let plan = vec![CallSpec::new("b", Blob::synthetic(10_000, 1), 5.0, 128)];
    let mut g = SimGrid::build(GridSpec::confined(1, 1).with_cfg(cfg).with_plan(plan));
    let coord_node = g.coords[0].1;
    let server_node = g.servers[0].1;
    // Sever coordinator→server after the assignment is out but before the
    // 5 s execution completes: the TaskDone gets through, its ack does not.
    g.world.schedule_control(
        SimTime::from_secs(3),
        rpcv::simnet::Control::Block { from: coord_node, to: server_node, bidir: false },
    );
    g.world.schedule_control(
        SimTime::from_secs(20),
        rpcv::simnet::Control::Unblock { from: coord_node, to: server_node, bidir: false },
    );
    g.run_until_done(SimTime::from_secs(1800)).expect("result reaches the client regardless");
    assert_eq!(g.client_results(), 1);
    g.world.run_until(SimTime::from_secs(19));
    assert_eq!(
        g.server(0).unwrap().unacked_results(),
        1,
        "ack lost to the outage: the log entry is stranded until the offer settles"
    );
    // After the heal, the next offered beat must come back ArchivesSettled.
    g.world.run_until(SimTime::from_secs(40));
    let server = g.server(0).unwrap();
    assert_eq!(server.unacked_results(), 0, "offer settled, log reclaimable");
    assert_eq!(server.metrics.archives_resent, 0, "settled, never re-requested");
    let coord = g.coordinator(0).unwrap();
    assert_eq!(coord.db().stats().duplicate_results, 0, "no duplicate delivery either");
}

/// The checkpointing extension's headline property, swept across crash
/// instants: a server dies mid-way through a long task and the promoted
/// instance — on a *different* server — resumes from the last checkpoint
/// the coordinator holds, repeating zero checkpointed units.  Against the
/// from-scratch baseline (checkpointing off), the successor executes
/// strictly fewer units, and the grid's total unit spend stays under 2×
/// the job's declared units.
#[test]
fn resumed_instance_skips_checkpointed_units() {
    use rpcv::ckpt::CheckpointPolicy;

    const UNITS: u32 = 90; // 90 units × 1 s/unit = one long 90 s task
    let run = |policy: CheckpointPolicy, crash_at: u64| -> (u64, u64, u64, u32) {
        let cfg = ProtocolConfig::confined()
            .with_heartbeat(SimDuration::from_secs(1))
            .with_suspicion(SimDuration::from_secs(5))
            .with_checkpoint_policy(policy);
        let call = CallSpec::new("b", Blob::synthetic(10_000, 1), UNITS as f64, 128)
            .with_work_units(UNITS);
        let mut g = SimGrid::build(GridSpec::confined(1, 2).with_cfg(cfg).with_plan(vec![call]));
        g.world.run_until(SimTime::from_secs(crash_at));
        // Crash whichever server is executing the task — permanently.
        let victim = (0..2)
            .find(|&i| g.server(i).is_some_and(|s| s.running_count() == 1))
            .expect("one server must be mid-task at the crash instant");
        let successor = 1 - victim;
        g.world.crash_now(g.servers[victim].1);
        // The resume point the successor will be handed: the last mark the
        // victim shipped before dying (nothing can move it until the
        // successor takes over).
        let hw = g
            .coordinator(0)
            .unwrap()
            .db()
            .ckpt_high_water(&rpcv::xw::JobKey::new(g.client_key, 1))
            .unwrap_or(0);
        g.run_until_done(SimTime::from_secs(1800)).expect("workload completes after the crash");
        assert_eq!(g.client_results(), 1);
        let s = g.server(successor).unwrap();
        let (succ_spent, succ_resumed) = (s.metrics.units_spent, s.metrics.units_resumed);
        // Restart the victim only to read its durable metrics: the partial
        // progress it burned before dying.
        g.world.restart_now(g.servers[victim].1);
        g.world.run_for(rpcv::simnet::SimDuration::from_millis(10));
        let victim_spent = g.server(victim).unwrap().metrics.units_spent;
        (succ_spent, succ_resumed, victim_spent, hw)
    };

    for crash_at in [12u64, 40, 70] {
        let (succ_spent, succ_resumed, victim_spent, hw) =
            run(CheckpointPolicy::Fixed(SimDuration::from_secs(5)), crash_at);
        assert!(hw > 0, "crash at {crash_at}s: a checkpoint must be durable by then");
        // Zero checkpointed units repeated: the successor banked exactly
        // the coordinator's high-water mark and computed only the rest.
        assert_eq!(succ_resumed, hw as u64, "crash at {crash_at}s");
        assert_eq!(succ_spent, (UNITS - hw) as u64, "crash at {crash_at}s");
        // Total executed units stay under 2× the job's units …
        let total = succ_spent + victim_spent;
        assert!(
            total < 2 * UNITS as u64,
            "crash at {crash_at}s: {total} units spent for a {UNITS}-unit job"
        );
        // … and under the from-scratch baseline, which re-executes all of
        // it (strictly more successor work, no resume at all).
        let (base_succ_spent, base_resumed, base_victim_spent, base_hw) =
            run(CheckpointPolicy::Disabled, crash_at);
        assert_eq!(base_hw, 0);
        assert_eq!(base_resumed, 0);
        assert_eq!(base_succ_spent, UNITS as u64, "baseline re-executes from unit zero");
        assert!(
            succ_spent < base_succ_spent,
            "crash at {crash_at}s: resume must beat re-execution"
        );
        assert!(succ_spent + victim_spent < base_succ_spent + base_victim_spent);
    }
}

/// Telemetry lifecycle audit: a mid-execution server crash leaves exactly
/// one failover annotation on the re-executed job's span.  The detection
/// gap recorded in the annotation is the true silence the coordinator
/// observed — at least the suspicion timeout, at most one heartbeat (the
/// scan period) more — and the annotation is stamped recovered once the
/// replacement instance dispatches.
#[test]
fn failover_span_records_one_bounded_annotation() {
    use rpcv::obs::SpanEdge;

    let heartbeat = SimDuration::from_secs(1);
    let suspicion = SimDuration::from_secs(5);
    let cfg = ProtocolConfig::confined().with_heartbeat(heartbeat).with_suspicion(suspicion);
    let call = CallSpec::new("b", Blob::synthetic(10_000, 1), 30.0, 128);
    let mut g = SimGrid::build(GridSpec::confined(1, 2).with_cfg(cfg).with_plan(vec![call]));

    // Crash whichever server is executing the 30 s task — permanently.
    g.world.run_until(SimTime::from_secs(10));
    let victim = (0..2)
        .find(|&i| g.server(i).is_some_and(|s| s.running_count() == 1))
        .expect("one server must be mid-task at the crash instant");
    g.world.crash_now(g.servers[victim].1);
    let done = g.run_until_done(SimTime::from_secs(1800)).expect("replacement completes");
    assert_eq!(g.client_results(), 1);
    // Collection acks ride the client beats: give them a few periods to
    // land so the Collected edge is stamped.
    g.world.run_until(done + SimDuration::from_secs(10));

    let coord = g.coordinator(0).expect("coordinator up");
    let job = rpcv::xw::JobKey::new(g.client_key, 1);
    let span = coord.spans().span(&job).expect("the job has a span");
    assert_eq!(span.failovers.len(), 1, "exactly one failover annotation");
    assert_eq!(span.reexecutions, 1, "one re-execution, annotated not restarted");
    let note = &span.failovers[0];
    assert!(
        note.detect_gap >= suspicion,
        "silence below the suspicion timeout must not fire: {:?}",
        note.detect_gap
    );
    assert!(
        note.detect_gap <= suspicion + heartbeat,
        "detection lags the timeout by at most one scan period: {:?}",
        note.detect_gap
    );
    let recovered = note.recovered_at.expect("replacement dispatch resolves the annotation");
    assert!(recovered > note.suspected_at);
    assert_eq!(note.recovery_gap(), Some(recovered.since(note.suspected_at)));

    // The edge timeline is intact despite the crash: dispatched exactly
    // once (the re-instance annotates, it does not restart), finished and
    // collected after the failover.
    let edge_at = |e: SpanEdge| span.marks.iter().find(|&&(m, _)| m == e).map(|&(_, t)| t);
    let dispatched = edge_at(SpanEdge::Dispatched).expect("dispatched edge");
    let finished = edge_at(SpanEdge::Finished).expect("finished edge");
    let collected = edge_at(SpanEdge::Collected).expect("collected edge");
    assert_eq!(span.marks.iter().filter(|&&(m, _)| m == SpanEdge::Dispatched).count(), 1);
    assert!(dispatched < note.suspected_at && note.suspected_at < finished);
    assert!(finished <= collected);

    // The folded registry agrees with the raw span: one recovery gap in
    // the histogram, one failover and one re-execution in the counters.
    let snap = coord.telemetry_snapshot();
    assert_eq!(snap.counter("span.failovers"), 1);
    assert_eq!(snap.counter("span.reexecutions"), 1);
    let gap_hist = snap.hist("span.failover_recovery_gap").expect("recovery-gap hist folded");
    assert_eq!(gap_hist.count(), 1);
}

/// Blocked-on-durability guarantee: under blocking-pessimistic logging a
/// crash at any instant never loses a submission whose interaction
/// completed — sweep the crash instant across the whole submission phase.
#[test]
fn blocking_pessimistic_never_loses_completed_submissions() {
    for crash_ms in [500u64, 1000, 2000, 3500, 5000] {
        let mut g = grid(LogStrategy::BlockingPessimistic);
        let client = g.client_node;
        g.world
            .schedule_control(SimTime::from_millis(crash_ms), rpcv::simnet::Control::Crash(client));
        g.world.schedule_control(
            SimTime::from_millis(crash_ms + 3000),
            rpcv::simnet::Control::Restart(client),
        );
        g.run_until_done(SimTime::from_secs(1800))
            .unwrap_or_else(|| panic!("crash at {crash_ms} ms must be survivable"));
        assert_eq!(g.client_results(), 8, "crash at {crash_ms} ms");
        // At-least-once may duplicate, but never lose: exactly 8 jobs.
        assert_eq!(g.coordinator(0).unwrap().db().stats().jobs, 8);
    }
}
