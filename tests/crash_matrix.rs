//! The §5.1 synchronization-cost crash matrix, as behaviour tests.
//!
//! The paper analyzes what each logging strategy costs after each crash
//! combination: "If only one of the components has crashed, the
//! synchronization times for the three protocols are identical ... When
//! both have crashed, all logs have been lost in the optimistic protocol.
//! Thus, the application has to re-execute all the RPC submissions ...
//! This is not the case for pessimistic logging where logs can be sent
//! immediately to the coordinator."

use rpcv::core::config::ProtocolConfig;
use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::core::util::CallSpec;
use rpcv::log::LogStrategy;
use rpcv::simnet::{SimDuration, SimTime};
use rpcv::wire::Blob;

fn plan(n: usize) -> Vec<CallSpec> {
    (0..n).map(|i| CallSpec::new("b", Blob::synthetic(10_000, i as u64), 3.0, 128)).collect()
}

fn grid(strategy: LogStrategy) -> SimGrid {
    let cfg = ProtocolConfig::confined()
        .with_log_strategy(strategy)
        .with_heartbeat(SimDuration::from_secs(1));
    SimGrid::build(GridSpec::confined(1, 4).with_cfg(cfg).with_plan(plan(8)))
}

/// Client crash alone: every strategy recovers every call (durable-log
/// replay plus coordinator-side registration make the strategies
/// equivalent, exactly as the paper states).
#[test]
fn client_crash_alone_recovers_under_every_strategy() {
    for strategy in LogStrategy::ALL {
        let mut g = grid(strategy);
        let client = g.client_node;
        g.world.schedule_control(SimTime::from_secs(4), rpcv::simnet::Control::Crash(client));
        g.world.schedule_control(SimTime::from_secs(8), rpcv::simnet::Control::Restart(client));
        g.run_until_done(SimTime::from_secs(1800))
            .unwrap_or_else(|| panic!("{} must recover from client crash", strategy.name()));
        assert_eq!(g.client_results(), 8, "{}", strategy.name());
    }
}

/// Coordinator crash alone (durable database): identical outcome for all
/// three strategies — "client logs can be lost on crash only".
#[test]
fn coordinator_crash_alone_recovers_under_every_strategy() {
    for strategy in LogStrategy::ALL {
        let mut g = grid(strategy);
        let c0 = g.coords[0].1;
        g.world.schedule_control(SimTime::from_secs(4), rpcv::simnet::Control::Crash(c0));
        g.world.schedule_control(SimTime::from_secs(10), rpcv::simnet::Control::Restart(c0));
        g.run_until_done(SimTime::from_secs(1800))
            .unwrap_or_else(|| panic!("{} must recover from coordinator crash", strategy.name()));
        assert_eq!(g.client_results(), 8, "{}", strategy.name());
    }
}

/// The double crash with a *wiped* coordinator: pessimistic client logs
/// resend everything; the optimistic client whose log tail was still in
/// the write-back cache loses those submissions — the paper's "the
/// application has to re-execute all the RPC submissions" case, which our
/// plan-driven client performs automatically (re-submission from the
/// application plan).
#[test]
fn double_crash_pessimistic_resends_from_logs() {
    for strategy in [LogStrategy::BlockingPessimistic, LogStrategy::NonBlockingPessimistic] {
        let mut g = grid(strategy);
        let client = g.client_node;
        let c0 = g.coords[0].1;
        // Crash both right after the submissions; wipe the coordinator so
        // only the client's durable log can rebuild the state.
        g.world.run_until(SimTime::from_secs(3));
        g.world.crash_now(client);
        g.world.crash_now(c0);
        g.world.wipe_durable(c0);
        g.world.restart_now(client);
        g.world.restart_now(c0);
        g.run_until_done(SimTime::from_secs(1800))
            .unwrap_or_else(|| panic!("{} must survive the double crash", strategy.name()));
        assert_eq!(g.client_results(), 8, "{}", strategy.name());
        // The durable log replay means no duplicate registrations either.
        let coord = g.coordinator(0).unwrap();
        assert_eq!(coord.db().stats().jobs, 8, "{}", strategy.name());
    }
}

/// Optimistic double crash: submissions still in the cache die with the
/// client; the *application plan* re-submits them (at-least-once), so the
/// run completes but with re-executed submissions — measurably more work.
#[test]
fn double_crash_optimistic_reexecutes_submissions() {
    let mut g = grid(LogStrategy::Optimistic);
    let client = g.client_node;
    let c0 = g.coords[0].1;
    g.world.run_until(SimTime::from_secs(3));
    g.world.crash_now(client);
    g.world.crash_now(c0);
    g.world.wipe_durable(c0);
    g.world.restart_now(client);
    g.world.restart_now(c0);
    g.run_until_done(SimTime::from_secs(1800)).expect("optimistic still completes");
    assert_eq!(g.client_results(), 8);
}

/// Blocked-on-durability guarantee: under blocking-pessimistic logging a
/// crash at any instant never loses a submission whose interaction
/// completed — sweep the crash instant across the whole submission phase.
#[test]
fn blocking_pessimistic_never_loses_completed_submissions() {
    for crash_ms in [500u64, 1000, 2000, 3500, 5000] {
        let mut g = grid(LogStrategy::BlockingPessimistic);
        let client = g.client_node;
        g.world
            .schedule_control(SimTime::from_millis(crash_ms), rpcv::simnet::Control::Crash(client));
        g.world.schedule_control(
            SimTime::from_millis(crash_ms + 3000),
            rpcv::simnet::Control::Restart(client),
        );
        g.run_until_done(SimTime::from_secs(1800))
            .unwrap_or_else(|| panic!("crash at {crash_ms} ms must be survivable"));
        assert_eq!(g.client_results(), 8, "crash at {crash_ms} ms");
        // At-least-once may duplicate, but never lose: exactly 8 jobs.
        assert_eq!(g.coordinator(0).unwrap().db().stats().jobs, 8);
    }
}
