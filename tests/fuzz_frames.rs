//! Frame-corruption fuzzing: every byte of a small frame corpus is
//! flipped and the damaged bytes are pushed through the digest envelope,
//! the decoder, and into live actors.  On the modelled wire every frame
//! travels digest-sealed (`body ‖ crc64(body)`), so corruption must
//! surface as the typed [`Msg::Corrupt`] poison — counted by every
//! actor's `bad_frames` metric, never a panic, never a partial state
//! change, and never a garbled-but-decodable forgery.

use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::core::msg::{Msg, RpcResult};
use rpcv::obs::{Registry, TelemetrySnapshot};
use rpcv::simnet::{SimDuration, SimTime};
use rpcv::wire::{from_bytes, open_frame, seal_frame, to_bytes, Blob, WireError};
use rpcv::xw::{ClientKey, CoordId, JobKey, ServerId, TaskId};

/// Small representative frames (no `Batch`, no `Corrupt`: a mutant that
/// keeps its tag byte keeps its variant, so every Ok-decoding mutant of
/// this corpus is a plain frame and the poison accounting below is
/// exact).
fn corpus() -> Vec<Msg> {
    let key = ClientKey::new(1, 2);
    vec![
        Msg::ClientBeat { client: key, max_seq: 9, collected: vec![1, 2], catalog_seq: 17 },
        Msg::SubmitAck { job: JobKey::new(key, 3), coord_max: 3, epoch: 9 },
        Msg::ClientSyncReply {
            coord_max: 5,
            epoch: 9,
            catalog_base: 17,
            catalog_head: 41,
            available: vec![(1, 100), (2, 5000)],
            removed: vec![3],
        },
        Msg::ResultsReply {
            results: vec![RpcResult { job: JobKey::new(key, 1), archive: Blob::synthetic(64, 5) }],
        },
        Msg::ServerBeat {
            server: ServerId(3),
            want_work: 1,
            running: vec![TaskId(7)],
            offered: vec![JobKey::new(key, 1)],
        },
        Msg::TaskDone {
            server: ServerId(3),
            task: TaskId(7),
            job: JobKey::new(key, 1),
            archive: Blob::synthetic(5000, 2),
        },
        Msg::NoWork,
        Msg::TaskDoneAck { task: TaskId(7), job: JobKey::new(key, 1) },
        Msg::NeedArchives { jobs: vec![JobKey::new(key, 1)] },
        Msg::CkptAck { task: TaskId(7), job: JobKey::new(key, 1), unit_hw: 24 },
    ]
}

/// Bare decoder robustness (no envelope): every byte-flipped mutant
/// either decodes to a well-formed frame or fails with a typed error —
/// the decoder itself never panics.  Some flips *do* survive decoding,
/// which is exactly why the wire wraps frames in the digest envelope.
#[test]
fn every_byte_flip_decodes_or_fails_typed() {
    let mut ok = 0u64;
    let mut err = 0u64;
    for msg in corpus() {
        let bytes = to_bytes(&msg);
        for i in 0..bytes.len() {
            let mut mutant = bytes.clone();
            mutant[i] ^= 0xFF;
            match from_bytes::<Msg>(&mutant) {
                Ok(_) => ok += 1,
                Err(_) => err += 1,
            }
        }
    }
    assert!(err > 0, "some flips must break the encoding");
    assert!(ok > 0, "some flips must survive decoding");
}

/// The digest envelope closes the gap the decoder leaves open: every
/// byte-flipped mutant of a *sealed* frame — body or digest tail — is
/// rejected before the decoder ever runs.  CRC-64 detects all burst
/// errors up to 64 bits, so a single damaged byte can never forge a
/// well-formed frame.
#[test]
fn every_sealed_byte_flip_is_rejected() {
    let mut rejected = 0u64;
    for msg in corpus() {
        let sealed = seal_frame(to_bytes(&msg));
        for i in 0..sealed.len() {
            let mut mutant = sealed.clone();
            mutant[i] ^= 0xFF;
            match open_frame(&mutant).and_then(from_bytes::<Msg>) {
                Ok(m) => panic!("flip of sealed byte {i} forged a frame: {m:?}"),
                Err(_) => rejected += 1,
            }
        }
        // The pristine sealed frame still round-trips.
        assert_eq!(open_frame(&sealed).and_then(from_bytes::<Msg>).as_ref(), Ok(&msg));
    }
    assert!(rejected > 0);
}

/// Every sealed-frame mutant is delivered to a live client, coordinator
/// and server.  Because the envelope rejects every single-byte flip,
/// *every* mutant arrives as poison — so the `bad_frames` accounting is
/// exact: one count per delivery, `mutants × targets` in total, and no
/// actor ever panics.
#[test]
fn actors_absorb_every_mutant_without_panicking() {
    let spec = GridSpec::confined(1, 2);
    let mut g = SimGrid::build(spec);

    let mut poison = 0u64;
    let mut at = SimTime::from_millis(1);
    let targets = [g.client_node, g.coords[0].1, g.servers[0].1];
    for msg in corpus() {
        let sealed = seal_frame(to_bytes(&msg));
        for i in 0..sealed.len() {
            let mut mutant = sealed.clone();
            mutant[i] ^= 0xFF;
            let delivered = match open_frame(&mutant).and_then(from_bytes::<Msg>) {
                Ok(m) => panic!("flip of sealed byte {i} forged a frame: {m:?}"),
                Err(_) => {
                    poison += 1;
                    Msg::Corrupt { len: mutant.len() as u64 }
                }
            };
            for &node in &targets {
                g.world.inject(at, node, delivered.clone());
            }
            at += SimDuration::from_millis(1);
        }
    }
    g.world.run_until(at + SimDuration::from_secs(30));

    let counted = g.client().expect("client up").metrics.bad_frames
        + g.coordinator(0).expect("coordinator up").metrics.bad_frames
        + g.server(0).expect("server up").metrics.bad_frames
        + g.server(1).expect("server up").metrics.bad_frames;
    assert!(poison > 0, "the corpus must produce some poison");
    assert_eq!(
        counted,
        poison * targets.len() as u64,
        "every poison delivery is counted exactly once, nothing else is"
    );
}

/// The tag-25/26 introspection frames obey the same envelope discipline
/// as every other frame: a sealed `StatusReply` carries a payload that is
/// *itself* a CRC-64-sealed telemetry snapshot, and a single damaged byte
/// at either layer must surface as a typed rejection — never a forged
/// snapshot, never a panic.
#[test]
fn sealed_status_frames_absorb_every_byte_flip() {
    let mut reg = Registry::new();
    reg.add_counter("coord.jobs", 7);
    reg.set_gauge("coord.shard", 3);
    reg.hist_mut("span.submit_to_collect").record_gap(SimDuration::from_millis(1234));
    let snap = reg.snapshot();
    let sealed_snap = snap.seal();

    // Inner envelope: every flip of the sealed snapshot fails typed.
    for i in 0..sealed_snap.len() {
        let mut mutant = sealed_snap.clone();
        mutant[i] ^= 0xFF;
        assert!(
            TelemetrySnapshot::open(&mutant).is_err(),
            "flip of sealed snapshot byte {i} must not forge a snapshot"
        );
    }
    assert_eq!(TelemetrySnapshot::open(&sealed_snap).as_ref(), Ok(&snap));

    // Outer envelope: every flip of the sealed status frames is rejected
    // before the decoder ever runs — request and reply alike.
    let frames = vec![
        Msg::StatusRequest { nonce: 41 },
        Msg::StatusReply { coord: CoordId(2), nonce: 41, sealed: Blob::from_vec(sealed_snap) },
    ];
    let mut rejected = 0u64;
    for msg in frames {
        let sealed = seal_frame(to_bytes(&msg));
        for i in 0..sealed.len() {
            let mut mutant = sealed.clone();
            mutant[i] ^= 0xFF;
            match open_frame(&mutant).and_then(from_bytes::<Msg>) {
                Ok(m) => panic!("flip of sealed byte {i} forged a status frame: {m:?}"),
                Err(_) => rejected += 1,
            }
        }
        // The pristine frame still round-trips.
        assert_eq!(open_frame(&sealed).and_then(from_bytes::<Msg>).as_ref(), Ok(&msg));
    }
    assert!(rejected > 0);
}

/// Batch mutants exercise the nested-container guard: flips either decode
/// (flat batches), fail typed, or are rejected as nested — never panic,
/// and a hand-built nested batch is always refused.
#[test]
fn batch_mutants_and_nesting_are_safe() {
    let key = ClientKey::new(1, 2);
    let batch = Msg::Batch {
        parts: vec![
            Msg::NeedArchives { jobs: vec![JobKey::new(key, 1)] },
            Msg::ArchivesSettled { jobs: vec![JobKey::new(key, 2)] },
        ],
    };
    let bytes = to_bytes(&batch);
    for i in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[i] ^= 0xFF;
        let _ = from_bytes::<Msg>(&mutant); // must not panic
    }
    let nested = Msg::Batch { parts: vec![batch] };
    assert_eq!(from_bytes::<Msg>(&to_bytes(&nested)), Err(WireError::Nested { ty: "Msg::Batch" }),);
}
