//! Cross-crate end-to-end tests on the deterministic simulator, driven
//! through the `rpcv` facade exactly as a downstream user would.

use rpcv::core::config::ProtocolConfig;
use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::core::util::CallSpec;
use rpcv::simnet::{Control, SimDuration, SimTime};
use rpcv::wire::Blob;
use rpcv::workload::{AlcatelApp, FaultPlan, SyntheticBench};

#[test]
fn alcatel_mini_run_is_deterministic_end_to_end() {
    let run = |seed: u64| {
        let app = AlcatelApp { tasks: 40, seed: 5 };
        let spec = GridSpec::real_life(2, 16).with_seed(seed).with_plan(app.plan());
        let mut grid = SimGrid::build(spec);
        let done = grid.run_until_done(SimTime::from_secs(3600 * 8)).expect("completes");
        (done, grid.world.trace().hash(), grid.client_results())
    };
    let (d1, h1, r1) = run(3);
    let (d2, h2, r2) = run(3);
    assert_eq!(d1, d2);
    assert_eq!(h1, h2);
    assert_eq!(r1, 40);
    assert_eq!(r2, 40);
    let (_, h3, _) = run(4);
    assert_ne!(h1, h3, "different seeds must diverge");
}

#[test]
fn tolerates_any_fault_combination() {
    // The paper's strongest claim: "It tolerates any fault combination of
    // its system components" — crash client, coordinators and servers in
    // overlapping windows; the run must still complete.
    let bench = SyntheticBench::fig7();
    let spec = GridSpec::confined(2, 8).with_seed(99).with_plan(bench.plan());
    let mut grid = SimGrid::build(spec);
    let c0 = grid.coords[0].1;
    let c1 = grid.coords[1].1;
    let s0 = grid.servers[0].1;
    let s3 = grid.servers[3].1;
    let client = grid.client_node;
    let plan = FaultPlan::new()
        .crash_at(SimTime::from_secs(12), c0)
        .crash_at(SimTime::from_secs(14), s0)
        .crash_at(SimTime::from_secs(16), client)
        .restart_at(SimTime::from_secs(30), client)
        .crash_at(SimTime::from_secs(40), c1)
        .restart_at(SimTime::from_secs(55), c0)
        .crash_at(SimTime::from_secs(60), s3)
        .restart_at(SimTime::from_secs(75), s0)
        .restart_at(SimTime::from_secs(90), s3);
    plan.apply(&mut grid.world);
    grid.run_until_done(SimTime::from_secs(3600 * 2))
        .expect("must complete through overlapping faults of every component kind");
    assert_eq!(grid.client_results(), 96);
}

#[test]
fn progress_condition_fails_closed_when_no_path() {
    // Complement of Fig. 11: when *no* path exists between client and
    // servers, nothing completes — and when the path is restored, the run
    // finishes (progress condition, both directions).
    let plan: Vec<CallSpec> =
        (0..4).map(|i| CallSpec::new("b", Blob::synthetic(100, i), 1.0, 32)).collect();
    let spec = GridSpec::confined(1, 2).with_plan(plan);
    let mut grid = SimGrid::build(spec);
    let c0 = grid.coords[0].1;
    let client = grid.client_node;
    grid.world.net_mut().block_bidir(client, c0);
    for &(_, s) in &grid.servers.clone() {
        grid.world.net_mut().block_bidir(s, c0);
    }
    grid.world.run_until(SimTime::from_secs(300));
    assert_eq!(grid.client_results(), 0, "no path ⇒ no progress");
    grid.world.net_mut().unblock_bidir(client, c0);
    for &(_, s) in &grid.servers.clone() {
        grid.world.net_mut().unblock_bidir(s, c0);
    }
    grid.run_until_done(SimTime::from_secs(3600)).expect("path restored ⇒ completes");
}

#[test]
fn results_survive_client_disconnection() {
    // §2.2: "we consider client disconnection as a normal event ... we let
    // the execution continue on the server side."  The client goes away
    // mid-run; executions continue; a later incarnation collects
    // everything.
    let plan: Vec<CallSpec> =
        (0..6).map(|i| CallSpec::new("b", Blob::synthetic(200, i), 20.0, 64)).collect();
    let cfg = ProtocolConfig::confined();
    let spec = GridSpec::confined(1, 3).with_cfg(cfg).with_plan(plan);
    let mut grid = SimGrid::build(spec);
    let client = grid.client_node;
    // Disconnect the client while tasks are executing; reconnect late.
    grid.world.schedule_control(SimTime::from_secs(5), Control::Crash(client));
    grid.world.schedule_control(SimTime::from_secs(120), Control::Restart(client));
    grid.world.run_until(SimTime::from_secs(100));
    // Executions continued server-side while the client was gone.
    let archived = grid.coordinator(0).unwrap().db().archived_count();
    assert!(archived >= 4, "server side must have progressed, got {archived}");
    grid.run_until_done(SimTime::from_secs(3600)).expect("reconnected client completes");
    assert_eq!(grid.client_results(), 6);
}

#[test]
fn garbage_collection_frees_collected_archives() {
    let plan: Vec<CallSpec> =
        (0..5).map(|i| CallSpec::new("b", Blob::synthetic(100, i), 0.5, 4096)).collect();
    let spec = GridSpec::confined(1, 2).with_plan(plan);
    let mut grid = SimGrid::build(spec);
    grid.run_until_done(SimTime::from_secs(600)).expect("completes");
    // Let the collected-acks ride a few beats back to the coordinator.
    grid.world.run_for(SimDuration::from_secs(30));
    let node = grid.coords[0].1;
    let freed = {
        let world = &mut grid.world;
        let coord = world
            .actor_mut::<rpcv::core::coordinator::CoordinatorActor>(node)
            .expect("coordinator up");
        coord.gc_now()
    };
    assert!(freed > 0, "collected archives must be reclaimable, freed {freed}");
}

#[test]
fn replica_never_reexecutes_while_primary_serves() {
    // Recovery ownership: re-execution serves *collection*, so only the
    // coordinator a client actually talks to may re-execute that
    // client's overdue missing-archive jobs.  A passive replica learns
    // of every job through the feed but must park its watches instead
    // (at scale the un-gated scan re-executed the whole backlog — the
    // "fault-free storm" the scale sweep's residency/flatness gates now
    // pin down).  Hold finished work uncollected well past
    // reexec_horizon (missing_archive_timeout = 60s confined) by taking
    // the client away: the quiet grid must dispatch exactly one
    // instance per job and re-execute nothing anywhere.
    let jobs = 40;
    let plan: Vec<CallSpec> =
        (0..jobs).map(|i| CallSpec::new("b", Blob::synthetic(100, i as u64), 0.5, 64)).collect();
    let spec = GridSpec::confined(2, 4).with_seed(7).with_plan(plan);
    let mut grid = SimGrid::build(spec);
    let client = grid.client_node;
    grid.world.schedule_control(SimTime::from_secs(5), Control::Crash(client));
    grid.world.schedule_control(SimTime::from_secs(400), Control::Restart(client));
    grid.run_until_done(SimTime::from_secs(3600)).expect("completes");
    grid.world.run_for(SimDuration::from_secs(120));
    assert_eq!(grid.client_results(), jobs);
    let tasks = grid.coordinator(0).unwrap().db().stats().tasks;
    assert_eq!(tasks as usize, jobs, "fault-free run must dispatch exactly one instance per job");
    for i in 0..2 {
        let c = grid.coordinator(i).unwrap();
        assert_eq!(c.metrics.reexecutions, 0, "coordinator {i} re-executed without any fault");
    }
}

#[test]
fn wrong_suspicion_is_survivable() {
    // §2.2: wrong negatives (alive components suspected) cannot be
    // avoided.  Partition the preferred coordinator long enough for
    // everyone to suspect it, then heal: the system must reconverge
    // without losing calls even though the "dead" coordinator never died.
    let plan: Vec<CallSpec> =
        (0..8).map(|i| CallSpec::new("b", Blob::synthetic(100, i), 5.0, 64)).collect();
    let spec = GridSpec::confined(2, 3).with_plan(plan);
    let mut grid = SimGrid::build(spec);
    let c0 = grid.coords[0].1;
    let client = grid.client_node;
    let servers: Vec<_> = grid.servers.iter().map(|&(_, n)| n).collect();
    // Cut everyone off from c0 between t=5 and t=120 (wrong suspicion).
    grid.world.schedule_control(
        SimTime::from_secs(5),
        Control::Block { from: client, to: c0, bidir: true },
    );
    for &s in &servers {
        grid.world.schedule_control(
            SimTime::from_secs(5),
            Control::Block { from: s, to: c0, bidir: true },
        );
        grid.world.schedule_control(
            SimTime::from_secs(120),
            Control::Unblock { from: s, to: c0, bidir: true },
        );
    }
    grid.world.schedule_control(
        SimTime::from_secs(120),
        Control::Unblock { from: client, to: c0, bidir: true },
    );
    grid.run_until_done(SimTime::from_secs(3600)).expect("survives wrong suspicion");
    assert_eq!(grid.client_results(), 8);
}
