//! The wall-clock runtime and the GridRPC-style API, end to end.

use std::time::Duration;

use rpcv::core::api::{GridClient, GridError};
use rpcv::core::config::{ExecMode, ProtocolConfig};
use rpcv::core::grid::GridSpec;
use rpcv::core::runtime::LiveGrid;
use rpcv::core::util::CallSpec;
use rpcv::simnet::SimDuration;
use rpcv::wire::{from_bytes, to_bytes, Blob};
use rpcv::xw::{Archive, ServiceError, ServiceRegistry};

fn registry() -> ServiceRegistry {
    let mut r = ServiceRegistry::new();
    r.register("test/double", |params: &Blob, _| {
        let v: u64 = from_bytes(&params.materialize())
            .map_err(|e| ServiceError::ExecutionFailed(e.to_string()))?;
        Ok(Blob::from_vec(to_bytes(&(v * 2))))
    });
    r
}

fn fast_cfg() -> ProtocolConfig {
    ProtocolConfig::confined()
        .with_exec_mode(ExecMode::Real)
        .with_heartbeat(SimDuration::from_millis(200))
        .with_suspicion(SimDuration::from_secs(2))
}

fn decode_result(blob: Blob) -> u64 {
    let archive = Archive::unpack(&blob.materialize()).expect("archive frame");
    from_bytes(&archive.entries[0].data.materialize()).expect("payload")
}

#[test]
fn call_roundtrip_with_real_execution() {
    let spec = GridSpec::confined(1, 2).with_cfg(fast_cfg()).with_registry(registry());
    let grid = LiveGrid::launch(spec, 100.0);
    let mut client = GridClient::new(&grid);
    let call = CallSpec::new("test/double", Blob::from_vec(to_bytes(&21u64)), 0.1, 16);
    let result = client.call(call, Duration::from_secs(30)).expect("blocking call");
    assert_eq!(decode_result(result), 42);
    grid.shutdown();
}

#[test]
fn async_calls_probe_and_wait_all() {
    let spec = GridSpec::confined(1, 3).with_cfg(fast_cfg()).with_registry(registry());
    let grid = LiveGrid::launch(spec, 100.0);
    let mut client = GridClient::new(&grid);
    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            client.call_async(CallSpec::new("test/double", Blob::from_vec(to_bytes(&i)), 0.1, 16))
        })
        .collect();
    client.wait_all(Duration::from_secs(60)).expect("all complete");
    for (i, h) in handles.iter().enumerate() {
        assert!(client.probe(*h), "probe after completion");
        let v = decode_result(client.wait(*h, Duration::from_secs(5)).unwrap());
        assert_eq!(v, i as u64 * 2);
    }
    grid.shutdown();
}

#[test]
fn cancel_is_local_only() {
    let spec = GridSpec::confined(1, 1).with_cfg(fast_cfg()).with_registry(registry());
    let grid = LiveGrid::launch(spec, 100.0);
    let mut client = GridClient::new(&grid);
    let h =
        client.call_async(CallSpec::new("test/double", Blob::from_vec(to_bytes(&1u64)), 0.1, 16));
    client.cancel(h);
    assert_eq!(client.wait(h, Duration::from_secs(1)), Err(GridError::Cancelled));
    grid.shutdown();
}

#[test]
fn survives_live_coordinator_crash_and_restart() {
    let spec = GridSpec::confined(2, 2).with_cfg(fast_cfg()).with_registry(registry());
    let grid = LiveGrid::launch(spec, 100.0);
    let mut client = GridClient::new(&grid);
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            client.call_async(CallSpec::new("test/double", Blob::from_vec(to_bytes(&i)), 1.0, 16))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    grid.crash_coordinator(0);
    std::thread::sleep(Duration::from_millis(200));
    grid.restart_coordinator(0);
    for (i, h) in handles.iter().enumerate() {
        let v = decode_result(client.wait(*h, Duration::from_secs(60)).expect("result"));
        assert_eq!(v, i as u64 * 2);
    }
    grid.shutdown();
}

#[test]
fn sandbox_violations_do_not_take_down_the_grid() {
    // A service whose output exceeds the sandbox limit fails its task;
    // well-behaved calls on the same grid still complete.
    let mut reg = registry();
    reg.register("test/blowup", |_, _| Ok(Blob::synthetic(1 << 20, 1)));
    let mut spec = GridSpec::confined(1, 2).with_cfg(fast_cfg()).with_registry(reg);
    spec.limits = rpcv::xw::SandboxLimits { max_input_bytes: 1 << 20, max_output_bytes: 1024 };
    let grid = LiveGrid::launch(spec, 100.0);
    let mut client = GridClient::new(&grid);
    let _bad = client.call_async(CallSpec::new("test/blowup", Blob::empty(), 0.1, 16));
    let good =
        client.call_async(CallSpec::new("test/double", Blob::from_vec(to_bytes(&5u64)), 0.1, 16));
    let v = decode_result(client.wait(good, Duration::from_secs(30)).expect("good call"));
    assert_eq!(v, 10);
    grid.shutdown();
}

#[test]
fn per_index_grid_clients_see_no_cross_tenant_results() {
    // Four tenants on one live grid, one GridClient handle per client
    // actor.  Each tenant's payloads are distinct, so any cross-tenant
    // delivery (a result landing at the wrong actor, or a handle reading
    // another tenant's session) shows up as a wrong decoded value or a
    // wrong per-actor result count.
    let spec =
        GridSpec::confined(2, 4).with_cfg(fast_cfg()).with_registry(registry()).with_clients(4);
    let grid = LiveGrid::launch(spec, 100.0);
    assert_eq!(grid.client_count(), 4);
    let mut clients: Vec<GridClient> = (0..4).map(|i| GridClient::at(&grid, i)).collect();
    let keys: Vec<_> = clients.iter().map(|c| c.client_key()).collect();
    assert_eq!(keys.iter().collect::<std::collections::BTreeSet<_>>().len(), 4);
    let calls_per_tenant = 3u64;
    let mut handles = Vec::new();
    for (i, c) in clients.iter_mut().enumerate() {
        let hs: Vec<_> = (0..calls_per_tenant)
            .map(|j| {
                let payload = i as u64 * 1000 + j;
                c.call_async(CallSpec::new(
                    "test/double",
                    Blob::from_vec(to_bytes(&payload)),
                    0.1,
                    16,
                ))
            })
            .collect();
        handles.push(hs);
    }
    for (i, c) in clients.iter().enumerate() {
        c.wait_all(Duration::from_secs(60)).unwrap_or_else(|e| panic!("tenant {i}: {e}"));
        for (j, h) in handles[i].iter().enumerate() {
            let v = decode_result(c.wait(*h, Duration::from_secs(10)).expect("result"));
            assert_eq!(v, (i as u64 * 1000 + j as u64) * 2, "tenant {i} call {j}");
        }
        // Exactly its own results — nothing leaked in from other tenants.
        let count = grid.with_client_at(i, |cl| cl.results_count()).expect("client up");
        assert_eq!(count, calls_per_tenant as usize, "tenant {i} result count");
    }
    grid.shutdown();
}

#[test]
fn pull_status_exposes_live_telemetry() {
    use rpcv::obs::TelemetrySnapshot;

    let spec = GridSpec::confined(2, 2).with_cfg(fast_cfg()).with_registry(registry());
    let grid = LiveGrid::launch(spec, 100.0);
    let mut client = GridClient::new(&grid);
    let call = CallSpec::new("test/double", Blob::from_vec(to_bytes(&21u64)), 0.1, 16);
    let result = client.call(call, Duration::from_secs(30)).expect("blocking call");
    assert_eq!(decode_result(result), 42);

    // A live pull reaches the client's preferred coordinator and comes
    // back as a decoded, sealed-and-verified snapshot of real state.
    let (coord, snap) = client.pull_status(Duration::from_secs(30)).expect("status pull");
    assert!(coord.0 < 2, "an actual grid coordinator answered: {coord:?}");
    assert!(snap.counter("db.jobs") >= 1, "the completed call is visible in the snapshot");
    assert!(snap.counter("coord.status_replies") >= 1, "the pull itself is metered");
    assert!(snap.counter("span.jobs") >= 1, "the job's lifecycle span was folded in");
    // The snapshot round-trips through its own sealed encoding.
    assert_eq!(TelemetrySnapshot::open(&snap.seal()).as_ref(), Ok(&snap));

    // A second pull is answered freshly (nonce-matched), so the reply
    // meter has visibly advanced — a stale cached snapshot would not.
    let (_, snap2) = client.pull_status(Duration::from_secs(30)).expect("second pull");
    assert!(snap2.counter("coord.status_replies") > snap.counter("coord.status_replies"));
    grid.shutdown();
}

#[test]
fn shutdown_returns_final_world() {
    let spec = GridSpec::confined(1, 1).with_cfg(fast_cfg()).with_registry(registry());
    let grid = LiveGrid::launch(spec, 100.0);
    let mut client = GridClient::new(&grid);
    let call = CallSpec::new("test/double", Blob::from_vec(to_bytes(&3u64)), 0.1, 16);
    client.call(call, Duration::from_secs(30)).expect("call");
    let world = grid.shutdown().expect("world returned");
    assert!(world.stats().delivered > 0);
}
