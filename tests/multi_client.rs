//! Multi-client grids: many concurrent submitters sharing one coordinator
//! set (the BOINC-style multi-tenant shape the paper's single-client
//! testbed never exercises), driven through the `rpcv` facade.
//!
//! The key risks these tests pin down: per-client keying of the
//! coordinator database (a result must never leak across `ClientKey`s),
//! the incremental result-catalog protocol under coordinator crash +
//! recovery (the catalog high-water mark resets with the boot epoch), and
//! plan completion for *every* client, not just the first.

use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::core::util::CallSpec;
use rpcv::simnet::{Control, SimTime};
use rpcv::wire::Blob;
use rpcv::workload::SyntheticBench;

/// Two clients with overlapping submission windows (and overlapping seq
/// ranges — seqs are only unique *per client*) run through a coordinator
/// crash and recovery.  Both plans must complete and neither client may
/// see the other's results.
#[test]
fn two_clients_overlapping_plans_survive_coordinator_crash() {
    // Distinct result sizes per client: received archives betray their
    // owner by length, so cross-client leakage cannot hide.
    let plan_a: Vec<CallSpec> =
        (0..10).map(|i| CallSpec::new("b", Blob::synthetic(400, i), 3.0, 300)).collect();
    let plan_b: Vec<CallSpec> =
        (0..8).map(|i| CallSpec::new("b", Blob::synthetic(500, 100 + i), 3.0, 700)).collect();
    let spec = GridSpec::confined(2, 4).with_client_plans(vec![plan_a, plan_b]).with_seed(0xBEEF);
    let mut grid = SimGrid::build(spec);
    assert_eq!(grid.client_count(), 2);
    assert_ne!(grid.clients[0].0, grid.clients[1].0, "distinct identities");

    // Crash the preferred coordinator mid-run; restart it later (durable
    // database, fresh boot epoch — clients must resync their catalog
    // high-water marks and keep merging deltas).
    let c0 = grid.coords[0].1;
    grid.world.schedule_control(SimTime::from_secs(6), Control::Crash(c0));
    grid.world.schedule_control(SimTime::from_secs(40), Control::Restart(c0));

    grid.run_until_done(SimTime::from_secs(3600))
        .expect("both plans must complete through coordinator crash + recovery");

    assert_eq!(grid.client_results_at(0), 10);
    assert_eq!(grid.client_results_at(1), 8);
    let a = grid.client_at(0).unwrap();
    for seq in 1..=10 {
        assert_eq!(a.result_archive(seq).map(|b| b.len()), Some(300), "A's own result {seq}");
    }
    let b = grid.client_at(1).unwrap();
    for seq in 1..=8 {
        assert_eq!(b.result_archive(seq).map(|b| b.len()), Some(700), "B's own result {seq}");
    }
    assert!(b.result_archive(9).is_none(), "B must not hold A's seq 9");
    assert!(b.result_archive(10).is_none(), "B must not hold A's seq 10");

    // The shared database keyed everything per client.
    let db = grid.coordinator(0).unwrap().db();
    assert_eq!(db.stats().jobs, 18);
    assert_eq!(db.client_max(grid.clients[0].0), 10);
    assert_eq!(db.client_max(grid.clients[1].0), 8);
}

/// A wider grid: four clients splitting one synthetic workload, with one
/// client crashing and restarting mid-run.  Everyone finishes, and the
/// per-client result counts add up to exactly the total workload (no
/// duplicate delivery across clients).
#[test]
fn four_clients_split_workload_with_client_crash() {
    let bench = SyntheticBench::small_calls(32).with_exec_secs(2.0);
    let spec = GridSpec::confined(2, 6).with_client_plans(bench.split_across(4)).with_seed(0x5EED);
    let mut grid = SimGrid::build(spec);
    assert_eq!(grid.client_count(), 4);

    // Client 2 disappears for a while (volatility is the norm).
    let victim = grid.clients[2].1;
    grid.world.schedule_control(SimTime::from_secs(5), Control::Crash(victim));
    grid.world.schedule_control(SimTime::from_secs(30), Control::Restart(victim));

    grid.run_until_done(SimTime::from_secs(3600)).expect("all four plans complete");

    let per_client: Vec<usize> = (0..4).map(|i| grid.client_results_at(i)).collect();
    assert_eq!(per_client.iter().sum::<usize>(), 32, "no loss, no cross-delivery");
    assert_eq!(per_client, vec![8, 8, 8, 8], "round-robin split: 8 calls each");
    for i in 0..4 {
        let done = grid.client_at(i).and_then(|c| c.metrics.done_at);
        assert!(done.is_some(), "client {i} must report completion");
    }
}
