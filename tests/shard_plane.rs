//! The sharded coordinator plane: hash-partitioned job space with
//! per-shard replication and failover.
//!
//! Every coordinator group ("shard") owns the clients whose
//! `ClientKey::shard_of` hash lands on it, runs its own change index,
//! replication feed, retention and snapshot bootstrap, and fails over
//! independently.  These tests pin the two load-bearing properties:
//!
//! 1. **Partitioning** — jobs live on exactly their owning shard; a
//!    mis-routed client is redirected by a `ShardMap` push and completes
//!    against its own group.
//! 2. **Isolation** — a primary crash in one shard fails over only that
//!    shard: every other shard keeps dispatching exactly one instance per
//!    job, with zero cross-shard re-execution.

use rpcv::core::config::ProtocolConfig;
use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::core::util::CallSpec;
use rpcv::simnet::{SimDuration, SimTime};
use rpcv::wire::Blob;
use rpcv::xw::ClientKey;

fn plan(n: usize, exec_secs: f64) -> Vec<CallSpec> {
    (0..n).map(|i| CallSpec::new("b", Blob::synthetic(4_000, i as u64), exec_secs, 128)).collect()
}

/// Client index → owning shard, exactly as every party computes it.
fn shard_of_client(i: usize, shards: usize) -> usize {
    ClientKey::new(i as u64 + 1, 1).shard_of(shards)
}

/// A 2-shard grid with clients hashing to both shards: every plan
/// completes, each shard's database holds exactly its own clients' jobs
/// (none of the other shard's), and nothing is re-executed or duplicated.
#[test]
fn sharded_grid_partitions_jobs_and_completes() {
    const SHARDS: usize = 2;
    const CLIENTS: usize = 4;
    const JOBS_EACH: usize = 6;
    let per_shard: Vec<Vec<usize>> = {
        let mut v = vec![Vec::new(); SHARDS];
        for i in 0..CLIENTS {
            v[shard_of_client(i, SHARDS)].push(i);
        }
        v
    };
    assert!(
        per_shard.iter().all(|c| !c.is_empty()),
        "fixture must exercise both shards, got {per_shard:?}"
    );

    let cfg = ProtocolConfig::confined().with_heartbeat(SimDuration::from_secs(1));
    let plans = (0..CLIENTS).map(|_| plan(JOBS_EACH, 2.0)).collect();
    let spec = GridSpec::confined(2, 6)
        .with_shards(SHARDS)
        .with_cfg(cfg)
        .with_client_plans(plans)
        .with_seed(0x51A2D);
    let mut g = SimGrid::build(spec);
    assert_eq!(g.coords.len(), SHARDS * 2, "two replicas per shard");

    g.run_until_done(SimTime::from_secs(1800)).expect("all plans complete on a sharded plane");
    for i in 0..CLIENTS {
        assert_eq!(g.client_results_at(i), JOBS_EACH, "client {i}");
    }

    // Shard-major layout: coordinator 2s is shard s's preferred primary.
    let mut redirects = 0;
    for (s, members) in per_shard.iter().enumerate() {
        let primary = g.coordinator(s * 2).expect("shard primary up");
        assert_eq!(primary.shard(), s);
        let db = primary.db();
        assert_eq!(
            db.stats().jobs,
            (members.len() * JOBS_EACH) as u64,
            "shard {s} holds exactly its clients' jobs"
        );
        for i in 0..CLIENTS {
            let expect = if members.contains(&i) { JOBS_EACH as u64 } else { 0 };
            assert_eq!(db.client_max(g.clients[i].0), expect, "client {i} on shard {s}");
        }
        assert_eq!(primary.metrics.reexecutions, 0, "shard {s}");
        assert_eq!(db.stats().duplicate_results, 0, "shard {s}");
        redirects += primary.metrics.shard_redirects;
    }
    // Bootstrap is a flat list, so clients of the non-first shard discover
    // their group through at least one ShardMap redirect — and once
    // redirected they stay put (the map push is idempotent).
    assert!(redirects >= 1, "mis-routed first contacts must be redirected");
    assert!(redirects <= (CLIENTS * 4) as u64, "redirects must not flap, got {redirects}");

    // One execution per job grid-wide.
    let executed: u64 = (0..6).map(|i| g.server(i).unwrap().metrics.executed).sum();
    assert_eq!(executed, (CLIENTS * JOBS_EACH) as u64, "exactly one instance per job");
}

/// The isolation half: shard 0's primary dies mid-run and never returns.
/// Shard 0 fails over to its replica and finishes; shard 1 must not even
/// notice — its job set stays single-instance (zero re-executions, one
/// task per job) and its servers never re-run anything for it.
#[test]
fn shard_primary_crash_fails_over_only_that_shard() {
    const SHARDS: usize = 2;
    const CLIENTS: usize = 4;
    const JOBS_EACH: usize = 6;
    let per_shard: Vec<Vec<usize>> = {
        let mut v = vec![Vec::new(); SHARDS];
        for i in 0..CLIENTS {
            v[shard_of_client(i, SHARDS)].push(i);
        }
        v
    };
    assert!(per_shard.iter().all(|c| !c.is_empty()));

    let cfg = ProtocolConfig::confined()
        .with_heartbeat(SimDuration::from_secs(1))
        .with_suspicion(SimDuration::from_secs(4))
        .with_replication_period(SimDuration::from_secs(2));
    let plans = (0..CLIENTS).map(|_| plan(JOBS_EACH, 6.0)).collect();
    let spec = GridSpec::confined(2, 6)
        .with_shards(SHARDS)
        .with_cfg(cfg)
        .with_client_plans(plans)
        .with_seed(0xFA110);
    let mut g = SimGrid::build(spec);

    // Shard 0's preferred primary dies for good while executions from both
    // shards are in flight (6 s tasks, crash at 8 s).
    g.world.schedule_control(SimTime::from_secs(8), rpcv::simnet::Control::Crash(g.coords[0].1));

    g.run_until_done(SimTime::from_secs(1800)).expect("both shards complete; shard 0 via failover");
    for i in 0..CLIENTS {
        assert_eq!(g.client_results_at(i), JOBS_EACH, "client {i}");
    }

    // Shard 0's clients failed over inside their own group.
    for &i in &per_shard[0] {
        let switches = g.client_at(i).unwrap().metrics.coordinator_switches;
        assert!(switches >= 1, "shard-0 client {i} must switch to the successor");
    }
    let successor = g.coordinator(1).expect("shard 0 successor up");
    assert_eq!(successor.shard(), 0);
    assert_eq!(
        successor.db().stats().jobs,
        (per_shard[0].len() * JOBS_EACH) as u64,
        "the successor inherits exactly shard 0's job set"
    );

    // Shard 1 never noticed: one task instance per job, zero re-executions,
    // and its replica ring is intact.
    let other_jobs = (per_shard[1].len() * JOBS_EACH) as u64;
    for m in 0..2 {
        let c = g.coordinator(2 + m).expect("shard 1 member up");
        assert_eq!(c.shard(), 1);
        assert_eq!(c.metrics.reexecutions, 0, "zero cross-shard re-execution (member {m})");
        assert_eq!(c.db().stats().duplicate_results, 0);
    }
    let shard1 = g.coordinator(2).unwrap();
    assert_eq!(shard1.db().stats().jobs, other_jobs);
    assert_eq!(shard1.db().stats().tasks, other_jobs, "exactly one instance per shard-1 job");

    // Grid-wide execution count: every job ran at least once, and any
    // surplus is confined to shard 0's failover — shard 1's instance
    // table (one task per job, zero re-executions) already pins its half
    // to exactly-once, so the surplus is bounded by shard 0's instances.
    let executed: u64 = (0..6).map(|i| g.server(i).unwrap().metrics.executed).sum();
    let shard0_instances = g.coordinator(1).unwrap().db().stats().tasks;
    assert!(executed >= (CLIENTS * JOBS_EACH) as u64, "every job executes");
    assert!(
        executed <= other_jobs + shard0_instances,
        "surplus executions must map to shard-0 instances: {executed} run, \
         {other_jobs} shard-1 jobs + {shard0_instances} shard-0 instances"
    );
}

/// Degenerate case: `with_shards(1)` is the flat plane — a single group,
/// no redirects, no `ShardMap` traffic — and behaves identically to an
/// unsharded build of the same spec.
#[test]
fn one_shard_grid_is_the_flat_plane() {
    let run = |spec: GridSpec| -> (Option<SimTime>, usize, u64) {
        let mut g = SimGrid::build(spec);
        let done = g.run_until_done(SimTime::from_secs(1800));
        let redirects = g.coordinator(0).unwrap().metrics.shard_redirects;
        (done, g.client_results(), redirects)
    };
    let spec = || {
        GridSpec::confined(2, 4)
            .with_cfg(ProtocolConfig::confined().with_heartbeat(SimDuration::from_secs(1)))
            .with_plan(plan(8, 2.0))
            .with_seed(0xD15C)
    };
    let (done_flat, results_flat, redirects_flat) = run(spec());
    let (done_sharded, results_sharded, redirects_sharded) = run(spec().with_shards(1));
    assert_eq!(done_flat, done_sharded, "with_shards(1) must be bit-identical");
    assert_eq!(results_flat, results_sharded);
    assert_eq!(redirects_flat, 0);
    assert_eq!(redirects_sharded, 0, "no redirect traffic on a 1-shard grid");
}
