//! Telemetry determinism, end to end.
//!
//! The observability plane is part of the modelled state: histograms are
//! recorded over *virtual* time, registries flatten into sorted vectors,
//! and the whole snapshot serializes without a single wall-clock or
//! platform dependence.  So the plane inherits the model's headline
//! guarantee — two same-seed runs produce byte-identical telemetry —
//! and, conversely, turning the kernel profiler on must not perturb a
//! single modelled series (observation is free).

use rpcv::core::grid::{GridSpec, SimGrid};
use rpcv::core::util::CallSpec;
use rpcv::obs::TelemetrySnapshot;
use rpcv::simnet::SimTime;
use rpcv::wire::Blob;

fn plan(n: usize) -> Vec<CallSpec> {
    (0..n).map(|i| CallSpec::new("b", Blob::synthetic(10_000, i as u64), 2.0, 256)).collect()
}

/// One full grid run at `seed`: 2 coordinators, 3 servers, 12 calls,
/// kernel profiling per `profiling`.  Returns the fleet-wide snapshot.
fn run(seed: u64, profiling: bool) -> TelemetrySnapshot {
    let spec = GridSpec::confined(2, 3).with_seed(seed).with_plan(plan(12));
    let mut g = SimGrid::build(spec);
    g.world.set_profiling(profiling);
    g.run_until_done(SimTime::from_secs(1800)).expect("workload completes");
    g.telemetry()
}

/// The determinism satellite: same seed ⇒ byte-identical snapshot —
/// structurally equal, same JSON bytes, same sealed wire bytes — across
/// several seeds, with profiling on (the hardest case: kernel series
/// sample real queue depths and busy time, in virtual units).
#[test]
fn same_seed_runs_serialize_byte_identically() {
    for seed in [1u64, 0xC0FFEE, 0x9E37_79B9_7F4A_7C15] {
        let a = run(seed, true);
        let b = run(seed, true);
        assert!(
            !a.counters.is_empty() && !a.hists.is_empty(),
            "seed {seed:#x}: snapshot must be non-trivial"
        );
        assert!(a.counter("span.jobs") >= 12, "seed {seed:#x}: every job spanned");
        assert!(
            a.hist("client.job_latency").is_some_and(|h| h.count() == 12),
            "seed {seed:#x}: every job's latency recorded"
        );
        assert_eq!(a, b, "seed {seed:#x}: snapshots diverge");
        assert_eq!(a.to_json(), b.to_json(), "seed {seed:#x}: JSON bytes diverge");
        assert_eq!(a.seal(), b.seal(), "seed {seed:#x}: sealed frames diverge");
    }
}

/// Different seeds genuinely move the telemetry (the determinism test
/// above is not vacuously comparing constants): virtual-time histograms
/// shift with the seed even though the workload is identical.
#[test]
fn different_seeds_produce_different_telemetry() {
    let a = run(11, true);
    let b = run(12, true);
    assert_eq!(a.counter("span.jobs"), b.counter("span.jobs"), "same workload either way");
    assert_ne!(a.to_json(), b.to_json(), "seed must leave a trace in the telemetry");
}

/// Flipping the kernel profiler on adds `kernel.*` series and changes
/// nothing else: every modelled (non-kernel) series is identical with and
/// without it.  This is the registry-level face of the simnet golden-hash
/// test — observation must be free.
#[test]
fn profiling_adds_kernel_series_without_touching_the_model() {
    let on = run(7, true);
    let off = run(7, false);
    assert!(
        on.counters.iter().any(|(k, _)| k.starts_with("kernel.")),
        "profiling on must export kernel series"
    );
    assert!(
        !off.counters.iter().any(|(k, _)| k.starts_with("kernel."))
            && !off.gauges.iter().any(|(k, _)| k.starts_with("kernel."))
            && !off.hists.iter().any(|(k, _)| k.starts_with("kernel.")),
        "profiling off must export no kernel series"
    );
    let strip = |s: &TelemetrySnapshot| TelemetrySnapshot {
        counters: s.counters.iter().filter(|(k, _)| !k.starts_with("kernel.")).cloned().collect(),
        gauges: s.gauges.iter().filter(|(k, _)| !k.starts_with("kernel.")).cloned().collect(),
        hists: s.hists.iter().filter(|(k, _)| !k.starts_with("kernel.")).cloned().collect(),
    };
    assert_eq!(strip(&on), strip(&off), "the profiler must not perturb modelled series");
}
